package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ftsched/internal/appio"
	"ftsched/internal/apps"
	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
	"ftsched/internal/serveapi"
	"ftsched/internal/sim"
)

func appJSON(t *testing.T, app *model.Application) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := appio.EncodeApplication(&buf, app); err != nil {
		t.Fatalf("encode app: %v", err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post issues one request and decodes the body into out (when non-nil),
// returning the status code.
func post(t *testing.T, url, tenant string, req, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if tenant != "" {
		hreq.Header.Set(serveapi.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response (%d): %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func wireErr(t *testing.T, url, tenant string, req any, wantCode int, wantKind string) serveapi.Error {
	t.Helper()
	var er serveapi.ErrorResponse
	code := post(t, url, tenant, req, &er)
	if code != wantCode || er.Err.Kind != wantKind {
		t.Fatalf("got %d/%q (%s), want %d/%q", code, er.Err.Kind, er.Err.Message, wantCode, wantKind)
	}
	return er.Err
}

func synthesize(t *testing.T, url string, app *model.Application, opts serveapi.FTQSOptionsJSON) serveapi.SynthesizeResponse {
	t.Helper()
	var resp serveapi.SynthesizeResponse
	if code := post(t, url+"/v1/synthesize", "", serveapi.SynthesizeRequest{
		Format: serveapi.FormatV1, App: appJSON(t, app), Options: opts,
	}, &resp); code != http.StatusOK {
		t.Fatalf("synthesize: status %d", code)
	}
	return resp
}

func TestSynthesizeCachesByCanonicalKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	app := apps.Fig1()

	first := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 8})
	if first.CacheHit {
		t.Fatal("first synthesis reported a cache hit")
	}
	if first.Nodes < 1 || first.TreeKey == "" {
		t.Fatalf("implausible response %+v", first)
	}

	second := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 8})
	if !second.CacheHit || second.TreeKey != first.TreeKey {
		t.Fatalf("second synthesis: %+v, want hit on %s", second, first.TreeKey)
	}

	// Different options derive a different key.
	other := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 2})
	if other.TreeKey == first.TreeKey {
		t.Fatal("M=2 and M=8 share a tree key")
	}

	// Workers is an execution hint, not identity.
	hint := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 8, Workers: 3})
	if !hint.CacheHit || hint.TreeKey != first.TreeKey {
		t.Fatalf("workers changed the key: %+v", hint)
	}
}

func TestUnknownTreeKeyIsTyped(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wireErr(t, ts.URL+"/v1/eval", "", serveapi.EvalRequest{
		Format:  serveapi.FormatV1,
		TreeRef: serveapi.TreeRef{TreeKey: "deadbeef"},
		Config:  serveapi.MCConfigJSON{Scenarios: 10},
	}, http.StatusNotFound, serveapi.KindUnknownTree)
}

func TestUnschedulableIsTyped(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Fig. 1 with its period as the only change is schedulable; an
	// impossible fault bound is the cheapest unschedulable input.
	app := model.NewApplication("impossible", 10, 3, 1)
	app.AddProcess(model.Process{Name: "P1", BCET: 8, AET: 8, WCET: 9, Deadline: 10, Kind: model.Hard})
	if err := app.Validate(); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	wireErr(t, ts.URL+"/v1/synthesize", "", serveapi.SynthesizeRequest{
		Format: serveapi.FormatV1, App: appJSON(t, app), Options: serveapi.FTQSOptionsJSON{M: 4},
	}, http.StatusUnprocessableEntity, serveapi.KindUnschedulable)
}

func TestDispatchRejectsOutOfModelCycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	app := apps.Fig1()
	syn := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 4})

	durations := make([]model.Time, app.N())
	for i := 0; i < app.N(); i++ {
		durations[i] = app.Proc(model.ProcessID(i)).WCET
	}
	bad := append([]model.Time(nil), durations...)
	bad[1] = app.Proc(1).WCET + 100 // beyond WCET: out of model
	werr := wireErr(t, ts.URL+"/v1/dispatch", "", serveapi.DispatchRequest{
		Format:  serveapi.FormatV1,
		TreeRef: serveapi.TreeRef{TreeKey: syn.TreeKey},
		Cycles: []serveapi.CycleJSON{
			{Durations: durations},
			{Durations: bad},
		},
	}, http.StatusBadRequest, serveapi.KindBadRequest)
	if !strings.Contains(werr.Message, "cycle 1") {
		t.Fatalf("rejection does not name the cycle: %q", werr.Message)
	}
}

func TestDispatchMatchesInProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	app := apps.Fig1()
	syn := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 8})

	tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatalf("FTQS: %v", err)
	}
	disp := mustDispatcher(t, tree)

	// Deterministically sampled in-model cycles, faults included.
	const cycles = 300
	var rng sim.RNG
	var sc sim.Scenario
	reqCycles := make([]serveapi.CycleJSON, cycles)
	want := make([]serveapi.CycleResultJSON, cycles)
	for i := 0; i < cycles; i++ {
		rng.Reseed(sim.ScenarioSeed(7, i))
		if err := sim.SampleRNGInto(&sc, app, &rng, i%(app.K()+1), nil); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		cp := sim.Scenario{
			Durations: append([]model.Time(nil), sc.Durations...),
			FaultsAt:  append([]int(nil), sc.FaultsAt...),
			NFaults:   sc.NFaults,
		}
		reqCycles[i] = serveapi.CycleJSONOf(cp)
		res, err := disp.Run(cp)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		want[i] = serveapi.ResultJSON(&res)
	}

	for _, workers := range []int{1, 3} {
		var resp serveapi.DispatchResponse
		if code := post(t, ts.URL+"/v1/dispatch", "", serveapi.DispatchRequest{
			Format:  serveapi.FormatV1,
			TreeRef: serveapi.TreeRef{TreeKey: syn.TreeKey},
			Cycles:  reqCycles,
			Workers: workers,
		}, &resp); code != http.StatusOK {
			t.Fatalf("dispatch: status %d", code)
		}
		if !resp.CacheHit {
			t.Fatal("dispatch missed the cache")
		}
		if !reflect.DeepEqual(resp.Results, want) {
			t.Fatalf("workers=%d: served results diverge from in-process dispatch", workers)
		}
	}
}

func TestRateLimitRejectionIsTyped(t *testing.T) {
	clock := time.Unix(1000, 0)
	s, ts := newTestServer(t, Config{
		Limits: Limits{RatePerSec: 1, Burst: 1},
		Now:    func() time.Time { return clock },
	})
	_ = s
	app := apps.Fig1()

	// First request takes the only token.
	synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 2})
	werr := wireErr(t, ts.URL+"/v1/synthesize", "", serveapi.SynthesizeRequest{
		Format: serveapi.FormatV1, App: appJSON(t, app), Options: serveapi.FTQSOptionsJSON{M: 2},
	}, http.StatusTooManyRequests, serveapi.KindRateLimited)
	if werr.RetryAfterMillis <= 0 || werr.Tenant != serveapi.DefaultTenant {
		t.Fatalf("rejection carries no retry hint/tenant: %+v", werr)
	}

	// Tenants are isolated: a fresh tenant has its own bucket.
	var resp serveapi.SynthesizeResponse
	if code := post(t, ts.URL+"/v1/synthesize", "other", serveapi.SynthesizeRequest{
		Format: serveapi.FormatV1, App: appJSON(t, app), Options: serveapi.FTQSOptionsJSON{M: 2},
	}, &resp); code != http.StatusOK {
		t.Fatalf("other tenant rejected: %d", code)
	}

	// Advancing the clock refills the bucket.
	clock = clock.Add(2 * time.Second)
	if code := post(t, ts.URL+"/v1/synthesize", "", serveapi.SynthesizeRequest{
		Format: serveapi.FormatV1, App: appJSON(t, app), Options: serveapi.FTQSOptionsJSON{M: 2},
	}, &resp); code != http.StatusOK {
		t.Fatalf("refilled bucket still rejects: %d", code)
	}
}

func TestInFlightCapRejectionIsTyped(t *testing.T) {
	reg := newTenants(Limits{MaxInFlight: 1})
	tn := reg.get("dev")
	done1, werr := tn.admit(time.Now())
	if werr != nil {
		t.Fatalf("first admit rejected: %v", werr)
	}
	if _, werr := tn.admit(time.Now()); werr == nil || werr.Kind != serveapi.KindOverloaded || werr.Code != http.StatusServiceUnavailable {
		t.Fatalf("second admit: %v, want 503 overloaded", werr)
	}
	done1()
	done2, werr := tn.admit(time.Now())
	if werr != nil {
		t.Fatalf("admit after release rejected: %v", werr)
	}
	done2()
}

// TestDrainLosesNothing races Drain against a burst of requests: every
// request either completes 200 or is rejected with the typed draining
// error — no connection drops, no lost accepted work — and Drain returns
// only after the accepted ones finished.
func TestDrainLosesNothing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	app := apps.Fig1()
	syn := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 4})

	durations := make([]model.Time, app.N())
	for i := 0; i < app.N(); i++ {
		durations[i] = app.Proc(model.ProcessID(i)).WCET
	}
	req := serveapi.DispatchRequest{
		Format:  serveapi.FormatV1,
		TreeRef: serveapi.TreeRef{TreeKey: syn.TreeKey},
		Cycles:  []serveapi.CycleJSON{{Durations: durations}},
	}
	body, _ := json.Marshal(req)

	const clients = 24
	codes := make([]int, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/dispatch", "application/json", bytes.NewReader(body))
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			var er serveapi.ErrorResponse
			_ = json.NewDecoder(resp.Body).Decode(&er)
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusServiceUnavailable && er.Err.Kind != serveapi.KindDraining {
				codes[i] = -2
			}
		}(i)
	}
	close(start)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	ok, drained := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			drained++
		default:
			t.Fatalf("client %d: unexpected outcome %d", i, c)
		}
	}
	t.Logf("drain outcome: %d completed, %d rejected draining", ok, drained)

	// New work after the drain is rejected with the typed error.
	wireErr(t, ts.URL+"/v1/dispatch", "", req, http.StatusServiceUnavailable, serveapi.KindDraining)
}

// TestReloadSwapsAtomically hammers dispatch while reloading the tree:
// every request succeeds (on the old or new artifact — never a torn one)
// and the generation counter advances.
func TestReloadSwapsAtomically(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	app := apps.Fig1()
	syn := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 8})

	durations := make([]model.Time, app.N())
	for i := 0; i < app.N(); i++ {
		durations[i] = app.Proc(model.ProcessID(i)).WCET
	}
	dreq, _ := json.Marshal(serveapi.DispatchRequest{
		Format:  serveapi.FormatV1,
		TreeRef: serveapi.TreeRef{TreeKey: syn.TreeKey},
		Cycles:  []serveapi.CycleJSON{{Durations: durations}},
	})

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/dispatch", "application/json", bytes.NewReader(dreq))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("dispatch during reload: status %d", resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
		}()
	}

	lastGen := 0
	for i := 0; i < 5; i++ {
		var resp serveapi.ReloadResponse
		if code := post(t, ts.URL+"/v1/reload", "", serveapi.ReloadRequest{
			Format: serveapi.FormatV1, TreeKey: syn.TreeKey,
			Trim: &serveapi.TrimJSON{Scenarios: 64, Seed: int64(i)},
		}, &resp); code != http.StatusOK {
			t.Fatalf("reload %d: status %d", i, code)
		}
		if resp.Generation != i+1 {
			t.Fatalf("reload %d: generation %d", i, resp.Generation)
		}
		lastGen = resp.Generation
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if lastGen != 5 {
		t.Fatalf("generation = %d, want 5", lastGen)
	}
}

func TestHealthzAndTenantMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	app := apps.Fig1()
	synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 2})

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health serveapi.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Trees != 1 || health.Tenants != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	// The default tenant exists after one request; its metrics endpoint
	// serves the Prometheus exposition with the serve counters.
	mresp, err := http.Get(ts.URL + "/v1/tenants/default/metrics")
	if err != nil {
		t.Fatalf("tenant metrics: %v", err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	if mresp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "ftsched_serve_requests_total") {
		t.Fatalf("tenant metrics scrape (%d): %.200s", mresp.StatusCode, buf.String())
	}

	// Unknown tenants are typed 404s.
	uresp, err := http.Get(ts.URL + "/v1/tenants/nobody/metrics")
	if err != nil {
		t.Fatalf("unknown tenant: %v", err)
	}
	defer uresp.Body.Close()
	if uresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d", uresp.StatusCode)
	}
}

func TestCertifyCounterexampleIsReplayable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A static single-schedule tree for Fig. 1 with k=2 faults certifies
	// at MaxFaults 0..k thanks to recovery slack; to force a violation,
	// certify a tree built for fewer faults than we certify against is
	// rejected by config — instead use the M=1 tree and raise MaxFaults
	// to k, which the root schedule tolerates. So assert the certified
	// path here, and the counterexample wiring is covered by the
	// determinism test against the in-process certifier (both sides must
	// agree, counterexample or not).
	app := apps.Fig1()
	syn := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 1})
	var resp serveapi.CertifyResponse
	if code := post(t, ts.URL+"/v1/certify", "", serveapi.CertifyRequest{
		Format:  serveapi.FormatV1,
		TreeRef: serveapi.TreeRef{TreeKey: syn.TreeKey},
		Config:  serveapi.CertifyConfigJSON{MaxFaults: app.K()},
	}, &resp); code != http.StatusOK {
		t.Fatalf("certify: status %d", code)
	}
	if !resp.Certified {
		t.Fatalf("M=1 Fig.1 tree failed certification: %+v", resp.Report)
	}
	if resp.Report.Scenarios <= 0 {
		t.Fatalf("report explored nothing: %+v", resp.Report)
	}

	inProc, err := certify.Certify(mustTree(t, app, 1), certify.Config{MaxFaults: app.K()})
	if err != nil {
		t.Fatalf("in-process certify: %v", err)
	}
	if !reflect.DeepEqual(resp.Report.Report(), inProc) {
		t.Fatalf("served report diverges:\nserved = %+v\nlocal  = %+v", resp.Report.Report(), inProc)
	}
}

func mustTree(t *testing.T, app *model.Application, m int) *core.Tree {
	t.Helper()
	tree, err := core.FTQS(app, core.FTQSOptions{M: m})
	if err != nil {
		t.Fatalf("FTQS: %v", err)
	}
	return tree
}

func mustDispatcher(t *testing.T, tree *core.Tree) *runtime.Dispatcher {
	t.Helper()
	disp, err := runtime.NewDispatcher(tree)
	if err != nil {
		t.Fatalf("dispatcher: %v", err)
	}
	return disp
}
