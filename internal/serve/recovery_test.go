package serve

import (
	"net/http"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/model"
	"ftsched/internal/serveapi"
)

// TestRecoveryDifferentiatesTreeKey: the recovery model rides inside the
// canonical application encoding, so the sha256 tree-cache key separates
// the same application under different models — and evaluation through the
// wire API reflects the model's fault-path cost.
func TestRecoveryDifferentiatesTreeKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := apps.Fig1()
	cp, err := base.WithRecovery(model.CheckpointModel(40, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := base.WithRecovery(model.RestartModel(2 * base.Mu()))
	if err != nil {
		t.Fatal(err)
	}

	keys := map[string]string{}
	for name, app := range map[string]*model.Application{"canonical": base, "checkpoint": cp, "restart": rs} {
		resp := synthesize(t, ts.URL, app, serveapi.FTQSOptionsJSON{M: 8})
		if resp.CacheHit {
			t.Fatalf("%s: unexpected cache hit", name)
		}
		keys[name] = resp.TreeKey
	}
	if keys["canonical"] == keys["checkpoint"] || keys["canonical"] == keys["restart"] || keys["checkpoint"] == keys["restart"] {
		t.Fatalf("recovery models share tree keys: %v", keys)
	}

	// A second synthesis of the recovering application hits the cache under
	// its own key, and the cached tree evaluates clean by key reference.
	again := synthesize(t, ts.URL, cp, serveapi.FTQSOptionsJSON{M: 8})
	if !again.CacheHit || again.TreeKey != keys["checkpoint"] {
		t.Fatalf("recovering application missed its own cache entry: %+v", again)
	}
	var eval serveapi.EvalResponse
	if code := post(t, ts.URL+"/v1/eval", "", serveapi.EvalRequest{
		Format:  serveapi.FormatV1,
		TreeRef: serveapi.TreeRef{TreeKey: keys["checkpoint"]},
		Config:  serveapi.MCConfigJSON{Scenarios: 400, Faults: 1, Seed: 9},
	}, &eval); code != http.StatusOK {
		t.Fatalf("eval: status %d", code)
	}
	if eval.Stats.HardViolations != 0 {
		t.Fatalf("hard violations through the wire under checkpoint: %+v", eval.Stats)
	}
	if eval.Stats.MeanRecoveries == 0 {
		t.Fatal("vacuous wire evaluation: no recoveries observed")
	}
}
