package serve

import (
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ftsched/internal/obs"
	"ftsched/internal/serveapi"
)

// Limits is the per-tenant admission policy. Zero values mean unlimited:
// the default server admits everything, and operators opt into shedding.
type Limits struct {
	// RatePerSec refills the tenant's token bucket (requests per second);
	// Burst caps the bucket (defaults to max(RatePerSec, 1) when a rate
	// is set). A request with no token is rejected 429 KindRateLimited
	// with a retry-after hint.
	RatePerSec float64
	Burst      float64
	// MaxInFlight caps the tenant's concurrently executing requests;
	// beyond it requests are rejected 503 KindOverloaded.
	MaxInFlight int
}

// tokenBucket is a hand-rolled token bucket (the container bakes in no
// rate-limit dependency, and the math is four lines): tokens refill
// continuously at rate/sec up to burst, one token per admitted request.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// take consumes one token, refilling for the elapsed time first. When
// empty it reports how long until the next token.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = b.burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// Tenant is one isolated client of the server: its own admission state
// and its own metrics collector, scrapeable at
// /v1/tenants/{name}/metrics.
type Tenant struct {
	name     string
	metrics  *obs.Metrics
	bucket   *tokenBucket // nil = unlimited rate
	inFlight atomic.Int64
	maxIn    int64 // 0 = unlimited
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Metrics returns the tenant's collector.
func (t *Tenant) Metrics() *obs.Metrics { return t.metrics }

// admit applies the tenant's admission policy. On success the caller owns
// one in-flight slot and must release it with done(). Rejections are the
// typed wire errors the contract promises: never a dropped connection.
func (t *Tenant) admit(now time.Time) (done func(), werr *serveapi.Error) {
	if t.bucket != nil {
		if ok, retry := t.bucket.take(now); !ok {
			t.metrics.Add(obs.ServeRejectedRate, 1)
			return nil, &serveapi.Error{
				Code: http.StatusTooManyRequests, Kind: serveapi.KindRateLimited,
				Message:          "tenant rate limit exceeded",
				Tenant:           t.name,
				RetryAfterMillis: int64(retry / time.Millisecond),
			}
		}
	}
	n := t.inFlight.Add(1)
	if t.maxIn > 0 && n > t.maxIn {
		t.inFlight.Add(-1)
		t.metrics.Add(obs.ServeRejectedLoad, 1)
		return nil, &serveapi.Error{
			Code: http.StatusServiceUnavailable, Kind: serveapi.KindOverloaded,
			Message: "tenant in-flight cap reached",
			Tenant:  t.name,
		}
	}
	return func() { t.inFlight.Add(-1) }, nil
}

// tenants is the registry: tenants materialise on first use with the
// server-wide default limits.
type tenants struct {
	limits Limits
	mu     sync.Mutex
	m      map[string]*Tenant
}

func newTenants(limits Limits) *tenants {
	return &tenants{limits: limits, m: make(map[string]*Tenant)}
}

func (r *tenants) get(name string) *Tenant {
	if name == "" {
		name = serveapi.DefaultTenant
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.m[name]; t != nil {
		return t
	}
	t := &Tenant{name: name, metrics: obs.NewMetrics(), maxIn: int64(r.limits.MaxInFlight)}
	if r.limits.RatePerSec > 0 {
		burst := r.limits.Burst
		if burst < 1 {
			burst = math.Max(r.limits.RatePerSec, 1)
		}
		t.bucket = &tokenBucket{rate: r.limits.RatePerSec, burst: burst}
	}
	r.m[name] = t
	return t
}

// lookup returns an existing tenant without creating one.
func (r *tenants) lookup(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[name]
}

func (r *tenants) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

func (r *tenants) totalInFlight() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, t := range r.m {
		n += t.inFlight.Load()
	}
	return n
}
