package serveapi

import (
	"encoding/json"
	"fmt"

	"ftsched/internal/appio"
	"ftsched/internal/chaos"
	"ftsched/internal/model"
)

// FormatV1 tags every request and response of the v1 wire contract.
const FormatV1 = "ftsched-api/v1"

// TenantHeader is the HTTP header naming the tenant a request is
// accounted against; absent or empty means DefaultTenant.
const TenantHeader = "X-FTSched-Tenant"

// DefaultTenant is the tenant requests without a TenantHeader land in.
const DefaultTenant = "default"

// DeadlineHeader is the HTTP header carrying the caller's remaining
// per-request budget in milliseconds. The server maps it onto the
// request context so engine work the caller will never see is canceled
// server-side instead of running to completion.
const DeadlineHeader = "X-FTSched-Deadline-Millis"

// Error kinds. Every non-2xx ftserved response body is an ErrorResponse
// whose Error carries one of these kinds — clients branch on Kind, never
// on message text.
const (
	// KindBadRequest: the body is not a well-formed request (broken JSON,
	// missing required fields, mis-sized scenario arrays).
	KindBadRequest = "bad_request"
	// KindUnknownFormat: the "format" field is missing or not FormatV1.
	KindUnknownFormat = "unknown_format"
	// KindInvalidConfig: a config failed the library's Validate; Field
	// names the offending config field.
	KindInvalidConfig = "invalid_config"
	// KindInvalidApp: the embedded application failed appio decoding or
	// model validation.
	KindInvalidApp = "invalid_application"
	// KindUnknownTree: the referenced tree_key is not (or no longer) in
	// the compiled-tree cache and the request embeds no application to
	// recompile it from.
	KindUnknownTree = "unknown_tree"
	// KindUnschedulable: synthesis failed — no schedule guarantees the
	// hard deadlines under k faults.
	KindUnschedulable = "unschedulable"
	// KindCounterexample: certification found a hard-deadline miss; the
	// CertifyResponse carries the replayable counterexample.
	KindCounterexample = "counterexample"
	// KindRateLimited: the tenant's token bucket is empty (HTTP 429);
	// RetryAfterMillis says when a token will be available.
	KindRateLimited = "rate_limited"
	// KindOverloaded: the tenant's in-flight cap is reached (HTTP 503).
	KindOverloaded = "overloaded"
	// KindDraining: the server is shutting down and admits no new work
	// (HTTP 503); in-flight requests still complete.
	KindDraining = "draining"
	// KindInternal: an unexpected server-side failure (HTTP 500).
	KindInternal = "internal"
)

// AllKinds lists every error kind of the taxonomy, in declaration order.
// A lockstep test pins it against the Kind* constants so additions to
// either are caught, and the client's retryable/non-retryable
// classification is table-tested over exactly this list.
func AllKinds() []string {
	return []string{
		KindBadRequest,
		KindUnknownFormat,
		KindInvalidConfig,
		KindInvalidApp,
		KindUnknownTree,
		KindUnschedulable,
		KindCounterexample,
		KindRateLimited,
		KindOverloaded,
		KindDraining,
		KindInternal,
	}
}

// Error is the typed wire error: admission-control rejections, decode
// failures and evaluation verdicts all surface as JSON bodies of this
// shape, never as bare status codes or dropped connections.
type Error struct {
	// Code is the HTTP status the error was (or should be) served with.
	Code int `json:"code"`
	// Kind is the machine-readable error class (Kind* constants).
	Kind string `json:"kind"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// Field names the offending config field for KindInvalidConfig.
	Field string `json:"field,omitempty"`
	// Tenant is the tenant the admission decision applied to.
	Tenant string `json:"tenant,omitempty"`
	// RetryAfterMillis hints when a rate-limited tenant should retry.
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
}

// Error implements error.
func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("ftsched-api: %s (%s, field %s): %s", e.Kind, httpStatusText(e.Code), e.Field, e.Message)
	}
	return fmt.Sprintf("ftsched-api: %s (%s): %s", e.Kind, httpStatusText(e.Code), e.Message)
}

// httpStatusText avoids importing net/http for one string table.
func httpStatusText(code int) string { return fmt.Sprintf("http %d", code) }

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Format string `json:"format"`
	Err    Error  `json:"error"`
}

// FTQSOptionsJSON mirrors core.FTQSOptions on the wire. Workers is
// accepted but excluded from the cache key: the synthesised tree is
// bit-identical for every worker count, so it is a server-side execution
// hint, not part of the tree's identity. Sink has no wire form.
type FTQSOptionsJSON struct {
	M              int     `json:"m"`
	SweepSamples   int     `json:"sweep_samples,omitempty"`
	MinGain        float64 `json:"min_gain,omitempty"`
	EvalScenarios  int     `json:"eval_scenarios,omitempty"`
	DisableRevival bool    `json:"disable_revival,omitempty"`
	Workers        int     `json:"workers,omitempty"`
}

// TreeRef addresses the compiled tree a request operates on: a tree_key
// returned by a previous synthesis, or an embedded application plus
// options for on-the-fly (cache-filling) compilation. When both are
// present the key must match the app/options pair's derived key.
type TreeRef struct {
	// TreeKey is the cache key of a previously synthesised tree.
	TreeKey string `json:"tree_key,omitempty"`
	// App is the application as appio JSON (the ftgen/ftsched file
	// format), for requests that compile on the fly.
	App json.RawMessage `json:"app,omitempty"`
	// Options tunes the synthesis when App is given.
	Options *FTQSOptionsJSON `json:"options,omitempty"`
}

// SynthesizeRequest asks the server to synthesise (or fetch from cache)
// the quasi-static tree for an application.
type SynthesizeRequest struct {
	Format  string          `json:"format"`
	App     json.RawMessage `json:"app"`
	Options FTQSOptionsJSON `json:"options"`
	// IncludeTree asks for the compact tree encoding in the response, so
	// a client can also dispatch locally from the served artifact.
	IncludeTree bool `json:"include_tree,omitempty"`
}

// SynthesizeResponse reports the cached or freshly compiled tree.
type SynthesizeResponse struct {
	Format string `json:"format"`
	// TreeKey identifies the compiled tree for subsequent eval, certify,
	// dispatch and reload requests. It is derived from the canonical
	// application encoding (which embeds k and the platform) plus the
	// normalised synthesis options, so identical inputs always map to the
	// same entry.
	TreeKey string `json:"tree_key"`
	// CacheHit reports whether the tree was already compiled.
	CacheHit bool `json:"cache_hit"`
	// Nodes and Arcs describe the tree; Generation counts hot reloads of
	// this entry (0 for a first compilation).
	Nodes      int `json:"nodes"`
	Arcs       int `json:"arcs"`
	Generation int `json:"generation"`
	// CompileMillis is the synthesis + dispatcher compile time of a miss
	// (0 on a hit).
	CompileMillis float64 `json:"compile_ms"`
	// Tree is the compact tree encoding when IncludeTree was set.
	Tree json.RawMessage `json:"tree,omitempty"`
}

// MCConfigJSON mirrors sim.MCConfig on the wire (Sink and Dispatcher have
// no wire form; the server supplies both).
type MCConfigJSON struct {
	Scenarios int   `json:"scenarios"`
	Faults    int   `json:"faults,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	// Workers is a server-side execution hint; results are bit-identical
	// for any value (the engine's worker-invariance contract), so a
	// server is free to clamp it.
	Workers int `json:"workers,omitempty"`
}

// EvalRequest runs a Monte-Carlo evaluation against a compiled tree.
type EvalRequest struct {
	Format string `json:"format"`
	TreeRef
	Config MCConfigJSON `json:"config"`
}

// MCStatsJSON mirrors sim.MCStats field-for-field. The conversion is
// lossless: MCStats → MCStatsJSON → JSON → MCStatsJSON → MCStats is the
// identity (encoding/json round-trips float64 exactly), which the wire
// determinism test gates on every fixture.
type MCStatsJSON struct {
	MeanUtility      float64 `json:"mean_utility"`
	StdDev           float64 `json:"std_dev"`
	MinUtility       float64 `json:"min_utility"`
	MaxUtility       float64 `json:"max_utility"`
	P05              float64 `json:"p05"`
	P50              float64 `json:"p50"`
	P95              float64 `json:"p95"`
	HardViolations   int     `json:"hard_violations"`
	Degraded         int     `json:"degraded"`
	Violations       int     `json:"violations"`
	MeanSwitches     float64 `json:"mean_switches"`
	MeanRecoveries   float64 `json:"mean_recoveries"`
	MeanEnergy       float64 `json:"mean_energy"`
	MeanEnergyActive float64 `json:"mean_energy_active"`
	MeanEnergyIdle   float64 `json:"mean_energy_idle"`
	Scenarios        int     `json:"scenarios"`
}

// EvalResponse carries the evaluation statistics.
type EvalResponse struct {
	Format   string      `json:"format"`
	TreeKey  string      `json:"tree_key"`
	CacheHit bool        `json:"cache_hit"`
	Stats    MCStatsJSON `json:"stats"`
}

// CertifyConfigJSON mirrors certify.Config on the wire (Sink has no wire
// form).
type CertifyConfigJSON struct {
	MaxFaults     int   `json:"max_faults,omitempty"`
	Workers       int   `json:"workers,omitempty"`
	Budget        int64 `json:"budget,omitempty"`
	MaxBoundaries int   `json:"max_boundaries,omitempty"`
}

// CertifyRequest certifies a compiled tree against the fault bound.
type CertifyRequest struct {
	Format string `json:"format"`
	TreeRef
	Config CertifyConfigJSON `json:"config"`
}

// CertifyReportJSON mirrors certify.Report field-for-field; WorstSlackProc
// is the ProcessID (or -1 for model.NoProcess).
type CertifyReportJSON struct {
	Mode               string     `json:"mode"`
	MaxFaults          int        `json:"max_faults"`
	Patterns           int        `json:"patterns"`
	PatternsPruned     int        `json:"patterns_pruned"`
	Scenarios          int64      `json:"scenarios"`
	BisectionRuns      int64      `json:"bisection_runs"`
	WorstSlack         model.Time `json:"worst_slack"`
	WorstSlackProc     int        `json:"worst_slack_proc"`
	MinUtility         float64    `json:"min_utility"`
	MinUtilityFaultsAt []int      `json:"min_utility_faults_at,omitempty"`
}

// CertifyResponse carries the certification verdict. Certified false comes
// with the replayable counterexample (ftsim -replay reads it back) and is
// served as HTTP 200: a completed certification that found a violation is
// a result, not a request failure.
type CertifyResponse struct {
	Format         string                `json:"format"`
	TreeKey        string                `json:"tree_key"`
	CacheHit       bool                  `json:"cache_hit"`
	Certified      bool                  `json:"certified"`
	Report         CertifyReportJSON     `json:"report"`
	Counterexample *appio.Counterexample `json:"counterexample,omitempty"`
}

// CycleJSON is one operation cycle of a batch dispatch request: the
// observed (or simulated) execution durations, positional by ProcessID,
// and the per-process fault counts. Scenarios must be in-model
// (durations within [BCET, WCET], fault total within k); out-of-model
// cycles are rejected with KindBadRequest — the served tree's guarantees
// do not cover them.
type CycleJSON struct {
	Durations []model.Time `json:"durations"`
	FaultsAt  []int        `json:"faults_at,omitempty"`
}

// DispatchRequest executes a batch of cycles through the compiled
// dispatcher — the per-cycle decision service. Batching many cycles per
// request amortises the wire cost over the ~1µs in-process dispatch cost;
// the server shards large batches over the PR 6 block driver.
type DispatchRequest struct {
	Format string `json:"format"`
	TreeRef
	Cycles []CycleJSON `json:"cycles"`
	// Workers is a server-side execution hint (results are positional and
	// independent of it).
	Workers int `json:"workers,omitempty"`
}

// CycleResultJSON is the dispatch outcome of one cycle, positionally
// matching DispatchRequest.Cycles.
type CycleResultJSON struct {
	Utility        float64    `json:"utility"`
	Makespan       model.Time `json:"makespan"`
	FinalNode      int        `json:"final_node"`
	Switches       int        `json:"switches"`
	Recoveries     int        `json:"recoveries"`
	FaultsConsumed int        `json:"faults_consumed"`
	HardViolations []int      `json:"hard_violations,omitempty"`
	Energy         float64    `json:"energy"`
}

// DispatchResponse carries the per-cycle outcomes.
type DispatchResponse struct {
	Format   string            `json:"format"`
	TreeKey  string            `json:"tree_key"`
	CacheHit bool              `json:"cache_hit"`
	Results  []CycleResultJSON `json:"results"`
}

// ChaosConfigJSON mirrors chaos.Config on the wire (Sink has no wire
// form). Policy is the DegradePolicy name ("strict", "shed-soft",
// "best-effort"); empty selects "shed-soft" — the containment mode the
// chaos contract scores are defined for.
type ChaosConfigJSON struct {
	Cycles         int     `json:"cycles"`
	Seed           int64   `json:"seed,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	Policy         string  `json:"policy,omitempty"`
	Clamp          bool    `json:"clamp,omitempty"`
	BaseFaults     int     `json:"base_faults,omitempty"`
	OverrunProb    float64 `json:"overrun_prob,omitempty"`
	OverrunFactor  float64 `json:"overrun_factor,omitempty"`
	StuckProb      float64 `json:"stuck_prob,omitempty"`
	RegressionProb float64 `json:"regression_prob,omitempty"`
	BurstProb      float64 `json:"burst_prob,omitempty"`
	ExtraFaults    int     `json:"extra_faults,omitempty"`
	Correlated     bool    `json:"correlated,omitempty"`
	SoftOnly       bool    `json:"soft_only,omitempty"`
}

// ChaosRequest runs a chaos campaign against a compiled tree.
type ChaosRequest struct {
	Format string `json:"format"`
	TreeRef
	Config ChaosConfigJSON `json:"config"`
	// IncludeRecords keeps the per-cycle records in the response; without
	// it only the aggregate counters are returned (records for a large
	// campaign dwarf the rest of the body).
	IncludeRecords bool `json:"include_records,omitempty"`
}

// ChaosResponse carries the campaign report. Contract findings (breaches,
// panics, misses) are scores on the report, not request failures — like a
// failed certification, a completed campaign is served as HTTP 200.
type ChaosResponse struct {
	Format   string        `json:"format"`
	TreeKey  string        `json:"tree_key"`
	CacheHit bool          `json:"cache_hit"`
	Report   *chaos.Report `json:"report"`
}

// TrimJSON asks a reload to trim the freshly recompiled tree
// (simulation-based arc removal) before the swap.
type TrimJSON struct {
	Scenarios int   `json:"scenarios"`
	Seed      int64 `json:"seed,omitempty"`
}

// ReloadRequest hot-recompiles the tree behind tree_key — fresh synthesis
// from the stored application and options, optionally trimmed — and swaps
// it in atomically. In-flight cycles finish on the tree they started
// with; requests admitted after the swap dispatch on the new tree.
type ReloadRequest struct {
	Format  string    `json:"format"`
	TreeKey string    `json:"tree_key"`
	Trim    *TrimJSON `json:"trim,omitempty"`
}

// ReloadResponse reports the swapped-in tree.
type ReloadResponse struct {
	Format  string `json:"format"`
	TreeKey string `json:"tree_key"`
	Nodes   int    `json:"nodes"`
	Arcs    int    `json:"arcs"`
	// ArcsTrimmed is the number of switch arcs trimming removed (0
	// without Trim).
	ArcsTrimmed int `json:"arcs_trimmed"`
	// Generation counts reloads of this entry since first compilation.
	Generation int `json:"generation"`
}

// HealthResponse is the body of GET /v1/healthz. Status walks the
// ok → degraded → draining state machine: "degraded" while the overload
// shedder refuses the endpoints listed in Shedding, "draining" once
// shutdown has begun.
type HealthResponse struct {
	Format   string `json:"format"`
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// Shedding lists the endpoints currently shed under overload
	// (sorted; empty when Status is "ok" or "draining").
	Shedding []string `json:"shedding,omitempty"`
	Trees    int      `json:"trees"`
	Tenants  int      `json:"tenants"`
	InFlight int64    `json:"in_flight"`
}
