package serveapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"reflect"
	"testing"

	"ftsched/internal/certify"
	"ftsched/internal/chaos"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
)

func body(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

func TestSniffFormat(t *testing.T) {
	cases := []struct {
		name string
		data string
		kind string // "" = accepted
	}{
		{"v1", `{"format":"ftsched-api/v1"}`, ""},
		{"missing", `{"app":{}}`, KindUnknownFormat},
		{"wrong", `{"format":"ftsched-api/v2"}`, KindUnknownFormat},
		{"tree format", `{"format":"ftsched-tree/v3"}`, KindUnknownFormat},
		{"broken", `{"format":`, KindBadRequest},
		{"array", `[1,2,3]`, KindBadRequest},
		{"null format", `{"format":null}`, KindUnknownFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			werr := sniffFormat([]byte(tc.data))
			switch {
			case tc.kind == "" && werr != nil:
				t.Fatalf("sniffFormat rejected %s: %v", tc.data, werr)
			case tc.kind != "" && werr == nil:
				t.Fatalf("sniffFormat accepted %s", tc.data)
			case tc.kind != "" && werr.Kind != tc.kind:
				t.Fatalf("kind = %q, want %q", werr.Kind, tc.kind)
			}
			if werr != nil && werr.Code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400", werr.Code)
			}
		})
	}
}

func TestDecodeSynthesizeRequest(t *testing.T) {
	req, werr := DecodeSynthesizeRequest(body(t, SynthesizeRequest{
		Format:  FormatV1,
		App:     json.RawMessage(`{"format":"ftsched-app/v1"}`),
		Options: FTQSOptionsJSON{M: 8},
	}))
	if werr != nil {
		t.Fatalf("decode: %v", werr)
	}
	if req.Options.M != 8 {
		t.Fatalf("M = %d, want 8", req.Options.M)
	}

	if _, werr := DecodeSynthesizeRequest(body(t, SynthesizeRequest{Format: FormatV1})); werr == nil || werr.Kind != KindBadRequest {
		t.Fatalf("missing app: werr = %v, want %s", werr, KindBadRequest)
	}
	if _, werr := DecodeSynthesizeRequest(body(t, SynthesizeRequest{
		Format: FormatV1, App: json.RawMessage(`{}`), Options: FTQSOptionsJSON{M: MaxTreeSize + 1},
	})); werr == nil || werr.Kind != KindInvalidConfig || werr.Field != "M" {
		t.Fatalf("oversized M: werr = %v, want invalid_config on M", werr)
	}
}

func TestDecodeEvalRequestValidates(t *testing.T) {
	req, cfg, werr := DecodeEvalRequest(body(t, EvalRequest{
		Format:  FormatV1,
		TreeRef: TreeRef{TreeKey: "abc"},
		Config:  MCConfigJSON{Scenarios: 100, Faults: 1, Seed: 42},
	}))
	if werr != nil {
		t.Fatalf("decode: %v", werr)
	}
	if req.TreeKey != "abc" || cfg.Scenarios != 100 || cfg.Faults != 1 || cfg.Seed != 42 {
		t.Fatalf("decoded %+v / %+v", req, cfg)
	}
	if cfg.Workers == 0 {
		t.Fatal("Validate did not normalise Workers")
	}

	// The wire rejects exactly what sim.MCConfig.Validate rejects, with
	// the same field name.
	_, _, werr = DecodeEvalRequest(body(t, EvalRequest{
		Format:  FormatV1,
		TreeRef: TreeRef{TreeKey: "abc"},
		Config:  MCConfigJSON{Scenarios: 0},
	}))
	if werr == nil || werr.Kind != KindInvalidConfig || werr.Field != "Scenarios" {
		t.Fatalf("werr = %v, want invalid_config on Scenarios", werr)
	}

	// No tree reference at all.
	_, _, werr = DecodeEvalRequest(body(t, EvalRequest{
		Format: FormatV1,
		Config: MCConfigJSON{Scenarios: 1},
	}))
	if werr == nil || werr.Kind != KindBadRequest {
		t.Fatalf("werr = %v, want bad_request", werr)
	}
}

func TestDecodeCertifyRequestValidates(t *testing.T) {
	_, cfg, werr := DecodeCertifyRequest(body(t, CertifyRequest{
		Format:  FormatV1,
		TreeRef: TreeRef{TreeKey: "abc"},
		Config:  CertifyConfigJSON{MaxFaults: 2},
	}))
	if werr != nil {
		t.Fatalf("decode: %v", werr)
	}
	if cfg.MaxFaults != 2 || cfg.Budget <= 0 {
		t.Fatalf("cfg = %+v, want normalised budget", cfg)
	}

	_, _, werr = DecodeCertifyRequest(body(t, CertifyRequest{
		Format:  FormatV1,
		TreeRef: TreeRef{TreeKey: "abc"},
		Config:  CertifyConfigJSON{MaxFaults: -1},
	}))
	if werr == nil || werr.Kind != KindInvalidConfig || werr.Field != "MaxFaults" {
		t.Fatalf("werr = %v, want invalid_config on MaxFaults", werr)
	}
}

func TestDecodeChaosRequestValidates(t *testing.T) {
	_, cfg, werr := DecodeChaosRequest(body(t, ChaosRequest{
		Format:  FormatV1,
		TreeRef: TreeRef{TreeKey: "abc"},
		Config:  ChaosConfigJSON{Cycles: 64, OverrunProb: 0.5, OverrunFactor: 2},
	}))
	if werr != nil {
		t.Fatalf("decode: %v", werr)
	}
	if cfg.Policy != runtime.PolicyShedSoft {
		t.Fatalf("empty policy resolved to %v, want shed-soft", cfg.Policy)
	}

	_, cfg, werr = DecodeChaosRequest(body(t, ChaosRequest{
		Format:  FormatV1,
		TreeRef: TreeRef{TreeKey: "abc"},
		Config:  ChaosConfigJSON{Cycles: 1, Policy: "strict"},
	}))
	if werr != nil || cfg.Policy != runtime.PolicyStrict {
		t.Fatalf("policy strict: cfg = %+v, werr = %v", cfg, werr)
	}

	_, _, werr = DecodeChaosRequest(body(t, ChaosRequest{
		Format:  FormatV1,
		TreeRef: TreeRef{TreeKey: "abc"},
		Config:  ChaosConfigJSON{Cycles: 1, Policy: "yolo"},
	}))
	if werr == nil || werr.Kind != KindInvalidConfig || werr.Field != "Policy" {
		t.Fatalf("unknown policy: werr = %v, want invalid_config on Policy", werr)
	}

	_, _, werr = DecodeChaosRequest(body(t, ChaosRequest{
		Format:  FormatV1,
		TreeRef: TreeRef{TreeKey: "abc"},
		Config:  ChaosConfigJSON{Cycles: 1, OverrunProb: 1.5},
	}))
	if werr == nil || werr.Kind != KindInvalidConfig || werr.Field != "OverrunProb" {
		t.Fatalf("bad prob: werr = %v, want invalid_config on OverrunProb", werr)
	}
}

func TestDecodeDispatchRequest(t *testing.T) {
	req, werr := DecodeDispatchRequest(body(t, DispatchRequest{
		Format:  FormatV1,
		TreeRef: TreeRef{TreeKey: "abc"},
		Cycles: []CycleJSON{
			{Durations: []model.Time{3, 5}},
			{Durations: []model.Time{3, 5}, FaultsAt: []int{1, 0}},
		},
	}))
	if werr != nil {
		t.Fatalf("decode: %v", werr)
	}
	if len(req.Cycles) != 2 {
		t.Fatalf("cycles = %d", len(req.Cycles))
	}

	cases := []struct {
		name string
		req  DispatchRequest
	}{
		{"no cycles", DispatchRequest{Format: FormatV1, TreeRef: TreeRef{TreeKey: "a"}}},
		{"empty durations", DispatchRequest{Format: FormatV1, TreeRef: TreeRef{TreeKey: "a"},
			Cycles: []CycleJSON{{}}}},
		{"mis-sized faults", DispatchRequest{Format: FormatV1, TreeRef: TreeRef{TreeKey: "a"},
			Cycles: []CycleJSON{{Durations: []model.Time{1, 2}, FaultsAt: []int{1}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, werr := DecodeDispatchRequest(body(t, tc.req)); werr == nil || werr.Kind != KindBadRequest {
				t.Fatalf("werr = %v, want bad_request", werr)
			}
		})
	}
}

func TestDecodeReloadRequest(t *testing.T) {
	if _, werr := DecodeReloadRequest(body(t, ReloadRequest{Format: FormatV1, TreeKey: "k"})); werr != nil {
		t.Fatalf("decode: %v", werr)
	}
	if _, werr := DecodeReloadRequest(body(t, ReloadRequest{Format: FormatV1})); werr == nil || werr.Kind != KindBadRequest {
		t.Fatalf("missing key: werr = %v", werr)
	}
	if _, werr := DecodeReloadRequest(body(t, ReloadRequest{Format: FormatV1, TreeKey: "k",
		Trim: &TrimJSON{Scenarios: 0}})); werr == nil || werr.Kind != KindInvalidConfig {
		t.Fatalf("zero trim: werr = %v", werr)
	}
}

func TestWireErrorMapping(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		code  int
		kind  string
		field string
	}{
		{"passthrough", &Error{Code: 429, Kind: KindRateLimited}, 429, KindRateLimited, ""},
		{"mc config", &sim.ConfigError{Field: "Scenarios", Value: -1}, 400, KindInvalidConfig, "Scenarios"},
		{"certify config", &certify.ConfigError{Field: "Budget", Value: -1}, 400, KindInvalidConfig, "Budget"},
		{"chaos config", &chaos.ConfigError{Field: "Cycles", Value: 0, Constraint: "must be positive"}, 400, KindInvalidConfig, "Cycles"},
		{"sample", &sim.SampleError{NFaults: 9, Bound: 2}, 400, KindBadRequest, ""},
		{"scenario size", &runtime.ScenarioSizeError{Durations: 1, Faults: 1, Want: 4}, 400, KindBadRequest, ""},
		{"unschedulable", fmt.Errorf("ftqs: %w", core.ErrUnschedulable), 422, KindUnschedulable, ""},
		{"unknown", errors.New("boom"), 500, KindInternal, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			werr := WireError(tc.err)
			if werr.Code != tc.code || werr.Kind != tc.kind || werr.Field != tc.field {
				t.Fatalf("WireError(%v) = %+v, want code %d kind %s field %q",
					tc.err, werr, tc.code, tc.kind, tc.field)
			}
			if werr.Message == "" && tc.name != "passthrough" {
				t.Fatal("empty message")
			}
		})
	}
}

// TestMCStatsRoundTrip gates the losslessness claim the wire determinism
// tests rest on: MCStats → JSON → MCStats is the identity, including
// non-round float64s.
func TestMCStatsRoundTrip(t *testing.T) {
	in := sim.MCStats{
		MeanUtility: 1.0 / 3.0, StdDev: math.Pi, MinUtility: -0.1, MaxUtility: math.Nextafter(1, 2),
		P05: 0.05, P50: 2.0 / 7.0, P95: 0.95,
		HardViolations: 3, Degraded: 5, Violations: 8,
		MeanSwitches: 0.1, MeanRecoveries: 0.2,
		MeanEnergy: 123.456, MeanEnergyActive: 100.4, MeanEnergyIdle: 23.056,
		Scenarios: 20000,
	}
	data, err := json.Marshal(StatsJSON(in))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var wire MCStatsJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out := wire.Stats(); out != in {
		t.Fatalf("round trip lost data:\n in = %+v\nout = %+v", in, out)
	}
}

func TestCertifyReportRoundTrip(t *testing.T) {
	in := certify.Report{
		Mode: "exhaustive", MaxFaults: 2, Patterns: 10, PatternsPruned: 3,
		Scenarios: 1234, BisectionRuns: 17,
		WorstSlack: 42, WorstSlackProc: model.NoProcess,
		MinUtility: 0.75, MinUtilityFaultsAt: []int{0, 2, 0},
	}
	data, err := json.Marshal(ReportJSON(in))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var wire CertifyReportJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out := wire.Report(); !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip lost data:\n in = %+v\nout = %+v", in, out)
	}
}

func TestChaosConfigRoundTrip(t *testing.T) {
	in := chaos.Config{
		Cycles: 100, Seed: 7, Workers: 2,
		Policy: runtime.PolicyBestEffort, Clamp: true, BaseFaults: 1,
		OverrunProb: 0.25, OverrunFactor: 1.5, StuckProb: 0.1,
		RegressionProb: 0.05, BurstProb: 0.2, ExtraFaults: 2,
		Correlated: true, SoftOnly: true,
	}
	data, err := json.Marshal(ChaosConfigJSONOf(in))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var wire ChaosConfigJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	out, err := wire.ChaosConfig()
	if err != nil {
		t.Fatalf("ChaosConfig: %v", err)
	}
	if out != in {
		t.Fatalf("round trip lost data:\n in = %+v\nout = %+v", in, out)
	}
}

func TestFTQSOptionsRoundTrip(t *testing.T) {
	in := core.FTQSOptions{M: 16, SweepSamples: 128, MinGain: 0.001, EvalScenarios: 32,
		DisableRevival: true, Workers: 3}
	data, err := json.Marshal(OptionsJSON(in))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var wire FTQSOptionsJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out := wire.Core(); out != in {
		t.Fatalf("round trip lost data:\n in = %+v\nout = %+v", in, out)
	}
}

func TestCycleScenarioConversion(t *testing.T) {
	sc := runtime.Scenario{Durations: []model.Time{3, 5, 2}, FaultsAt: []int{0, 2, 1}, NFaults: 3}
	c := CycleJSONOf(sc)
	back := c.Scenario()
	if !reflect.DeepEqual(back, sc) {
		t.Fatalf("round trip: %+v != %+v", back, sc)
	}

	// Fault-free scenarios omit FaultsAt on the wire; Scenario rebuilds a
	// zero slice of the right length.
	free := runtime.Scenario{Durations: []model.Time{3, 5}, FaultsAt: []int{0, 0}}
	cf := CycleJSONOf(free)
	if cf.FaultsAt != nil {
		t.Fatalf("fault-free cycle kept FaultsAt %v", cf.FaultsAt)
	}
	got := cf.Scenario()
	if !reflect.DeepEqual(got, free) {
		t.Fatalf("fault-free round trip: %+v != %+v", got, free)
	}
}

func TestErrorIsError(t *testing.T) {
	var err error = &Error{Code: 429, Kind: KindRateLimited, Message: "slow down", Tenant: "t1"}
	if err.Error() == "" {
		t.Fatal("empty Error()")
	}
	var werr *Error
	if !errors.As(fmt.Errorf("wrap: %w", err), &werr) || werr.Tenant != "t1" {
		t.Fatalf("errors.As failed: %v", werr)
	}
}
