package serveapi

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeAPIRequest drives every request decoder with arbitrary bytes.
// The invariants: no decoder panics, every rejection is a typed *Error
// with a 4xx code and a known kind, and every accepted body re-encodes.
func FuzzDecodeAPIRequest(f *testing.F) {
	f.Add([]byte(`{"format":"ftsched-api/v1","app":{"k":1},"options":{"m":4}}`))
	f.Add([]byte(`{"format":"ftsched-api/v1","tree_key":"abc","config":{"scenarios":100,"faults":1}}`))
	f.Add([]byte(`{"format":"ftsched-api/v1","tree_key":"abc","config":{"max_faults":2,"budget":1000}}`))
	f.Add([]byte(`{"format":"ftsched-api/v1","tree_key":"abc","config":{"cycles":8,"policy":"shed-soft","overrun_prob":0.5,"overrun_factor":2}}`))
	f.Add([]byte(`{"format":"ftsched-api/v1","tree_key":"abc","cycles":[{"durations":[3,5],"faults_at":[1,0]}]}`))
	f.Add([]byte(`{"format":"ftsched-api/v1","tree_key":"abc","trim":{"scenarios":256,"seed":7}}`))
	f.Add([]byte(`{"format":"ftsched-tree/v3"}`))
	f.Add([]byte(`{"format":null}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"format":"ftsched-api/v1","config":{"scenarios":-1}}`))
	f.Add([]byte(`{"format":"ftsched-api/v1","tree_key":"abc","config":{"cycles":1,"policy":"nope"}}`))

	known := map[string]bool{
		KindBadRequest: true, KindUnknownFormat: true, KindInvalidConfig: true,
		KindInvalidApp: true, KindUnknownTree: true,
	}
	check := func(t *testing.T, werr *Error) {
		if werr == nil {
			return
		}
		if werr.Code < 400 || werr.Code > 499 {
			t.Fatalf("decode rejection carries non-4xx code %d: %+v", werr.Code, werr)
		}
		if !known[werr.Kind] {
			t.Fatalf("decode rejection carries unknown kind %q: %+v", werr.Kind, werr)
		}
		if werr.Message == "" {
			t.Fatalf("decode rejection carries no message: %+v", werr)
		}
	}
	reencode := func(t *testing.T, v any) {
		if _, err := json.Marshal(v); err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, werr := DecodeSynthesizeRequest(data); werr != nil {
			check(t, werr)
		} else {
			reencode(t, req)
		}
		if req, _, werr := DecodeEvalRequest(data); werr != nil {
			check(t, werr)
		} else {
			reencode(t, req)
		}
		if req, _, werr := DecodeCertifyRequest(data); werr != nil {
			check(t, werr)
		} else {
			reencode(t, req)
		}
		if req, _, werr := DecodeChaosRequest(data); werr != nil {
			check(t, werr)
		} else {
			reencode(t, req)
		}
		if req, werr := DecodeDispatchRequest(data); werr != nil {
			check(t, werr)
		} else {
			reencode(t, req)
		}
		if req, werr := DecodeReloadRequest(data); werr != nil {
			check(t, werr)
		} else {
			reencode(t, req)
		}
	})
}
