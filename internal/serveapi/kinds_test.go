package serveapi

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestAllKindsLockstep parses api.go and asserts AllKinds() lists every
// Kind* string constant exactly once, in declaration order. Adding a
// kind to the taxonomy without extending AllKinds (and with it the
// client's retryable/non-retryable classification table) fails here.
func TestAllKindsLockstep(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "api.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var declared []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, n := range vs.Names {
				if strings.HasPrefix(n.Name, "Kind") {
					declared = append(declared, n.Name)
				}
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("no Kind* constants found in api.go")
	}
	listed := AllKinds()
	if len(listed) != len(declared) {
		t.Fatalf("AllKinds() has %d entries, api.go declares %d Kind* constants", len(listed), len(declared))
	}
	// Values are distinct and each declared constant's value appears:
	// the constants are untyped strings, so compare by value via a
	// name→value map built from the AST.
	seen := map[string]bool{}
	for _, v := range listed {
		if seen[v] {
			t.Errorf("AllKinds() lists %q twice", v)
		}
		seen[v] = true
	}
	for _, name := range declared {
		obj := f.Scope.Lookup(name)
		if obj == nil {
			t.Fatalf("cannot resolve %s", name)
		}
		vs := obj.Decl.(*ast.ValueSpec)
		lit, ok := vs.Values[0].(*ast.BasicLit)
		if !ok {
			t.Fatalf("%s is not a string literal", name)
		}
		val := strings.Trim(lit.Value, `"`)
		if !seen[val] {
			t.Errorf("AllKinds() is missing %s (%q)", name, val)
		}
	}
}
