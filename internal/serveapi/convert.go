package serveapi

import (
	"ftsched/internal/certify"
	"ftsched/internal/chaos"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
)

// OptionsJSON converts synthesis options to their wire form.
func OptionsJSON(o core.FTQSOptions) FTQSOptionsJSON {
	return FTQSOptionsJSON{
		M:              o.M,
		SweepSamples:   o.SweepSamples,
		MinGain:        o.MinGain,
		EvalScenarios:  o.EvalScenarios,
		DisableRevival: o.DisableRevival,
		Workers:        o.Workers,
	}
}

// Core converts wire options back to core.FTQSOptions (Sink stays nil; the
// server attaches its own).
func (o FTQSOptionsJSON) Core() core.FTQSOptions {
	return core.FTQSOptions{
		M:              o.M,
		SweepSamples:   o.SweepSamples,
		MinGain:        o.MinGain,
		EvalScenarios:  o.EvalScenarios,
		DisableRevival: o.DisableRevival,
		Workers:        o.Workers,
	}
}

// StatsJSON converts evaluation statistics to their wire form.
func StatsJSON(s sim.MCStats) MCStatsJSON {
	return MCStatsJSON{
		MeanUtility:      s.MeanUtility,
		StdDev:           s.StdDev,
		MinUtility:       s.MinUtility,
		MaxUtility:       s.MaxUtility,
		P05:              s.P05,
		P50:              s.P50,
		P95:              s.P95,
		HardViolations:   s.HardViolations,
		Degraded:         s.Degraded,
		Violations:       s.Violations,
		MeanSwitches:     s.MeanSwitches,
		MeanRecoveries:   s.MeanRecoveries,
		MeanEnergy:       s.MeanEnergy,
		MeanEnergyActive: s.MeanEnergyActive,
		MeanEnergyIdle:   s.MeanEnergyIdle,
		Scenarios:        s.Scenarios,
	}
}

// Stats converts wire statistics back to sim.MCStats.
func (j MCStatsJSON) Stats() sim.MCStats {
	return sim.MCStats{
		MeanUtility:      j.MeanUtility,
		StdDev:           j.StdDev,
		MinUtility:       j.MinUtility,
		MaxUtility:       j.MaxUtility,
		P05:              j.P05,
		P50:              j.P50,
		P95:              j.P95,
		HardViolations:   j.HardViolations,
		Degraded:         j.Degraded,
		Violations:       j.Violations,
		MeanSwitches:     j.MeanSwitches,
		MeanRecoveries:   j.MeanRecoveries,
		MeanEnergy:       j.MeanEnergy,
		MeanEnergyActive: j.MeanEnergyActive,
		MeanEnergyIdle:   j.MeanEnergyIdle,
		Scenarios:        j.Scenarios,
	}
}

// MCConfig materialises and validates the wire config, reusing
// sim.MCConfig.Validate verbatim — the same *sim.ConfigError the library
// and CLIs produce.
func (c MCConfigJSON) MCConfig() (sim.MCConfig, error) {
	cfg := sim.MCConfig{
		Scenarios: c.Scenarios,
		Faults:    c.Faults,
		Seed:      c.Seed,
		Workers:   c.Workers,
	}
	return cfg.Validate()
}

// MCConfigJSONOf converts a library config to its wire form (Sink and
// Dispatcher are dropped: they have no wire representation).
func MCConfigJSONOf(c sim.MCConfig) MCConfigJSON {
	return MCConfigJSON{Scenarios: c.Scenarios, Faults: c.Faults, Seed: c.Seed, Workers: c.Workers}
}

// CertifyConfig materialises and validates the wire config, reusing
// certify.Config.Validate verbatim.
func (c CertifyConfigJSON) CertifyConfig() (certify.Config, error) {
	cfg := certify.Config{
		MaxFaults:     c.MaxFaults,
		Workers:       c.Workers,
		Budget:        c.Budget,
		MaxBoundaries: c.MaxBoundaries,
	}
	return cfg.Validate()
}

// CertifyConfigJSONOf converts a library config to its wire form.
func CertifyConfigJSONOf(c certify.Config) CertifyConfigJSON {
	return CertifyConfigJSON{MaxFaults: c.MaxFaults, Workers: c.Workers, Budget: c.Budget, MaxBoundaries: c.MaxBoundaries}
}

// ChaosConfig materialises and validates the wire config, reusing
// chaos.Config.Validate verbatim. An empty Policy selects shed-soft; an
// unknown name is a typed *Error naming the field.
func (c ChaosConfigJSON) ChaosConfig() (chaos.Config, error) {
	policy := runtime.PolicyShedSoft
	if c.Policy != "" {
		if err := policy.UnmarshalText([]byte(c.Policy)); err != nil {
			return chaos.Config{}, &Error{Code: 400, Kind: KindInvalidConfig, Field: "Policy", Message: err.Error()}
		}
	}
	cfg := chaos.Config{
		Cycles:         c.Cycles,
		Seed:           c.Seed,
		Workers:        c.Workers,
		Policy:         policy,
		Clamp:          c.Clamp,
		BaseFaults:     c.BaseFaults,
		OverrunProb:    c.OverrunProb,
		OverrunFactor:  c.OverrunFactor,
		StuckProb:      c.StuckProb,
		RegressionProb: c.RegressionProb,
		BurstProb:      c.BurstProb,
		ExtraFaults:    c.ExtraFaults,
		Correlated:     c.Correlated,
		SoftOnly:       c.SoftOnly,
	}
	return cfg.Validate()
}

// ChaosConfigJSONOf converts a library config to its wire form.
func ChaosConfigJSONOf(c chaos.Config) ChaosConfigJSON {
	return ChaosConfigJSON{
		Cycles:         c.Cycles,
		Seed:           c.Seed,
		Workers:        c.Workers,
		Policy:         c.Policy.String(),
		Clamp:          c.Clamp,
		BaseFaults:     c.BaseFaults,
		OverrunProb:    c.OverrunProb,
		OverrunFactor:  c.OverrunFactor,
		StuckProb:      c.StuckProb,
		RegressionProb: c.RegressionProb,
		BurstProb:      c.BurstProb,
		ExtraFaults:    c.ExtraFaults,
		Correlated:     c.Correlated,
		SoftOnly:       c.SoftOnly,
	}
}

// ReportJSON converts a certification report to its wire form.
func ReportJSON(r certify.Report) CertifyReportJSON {
	return CertifyReportJSON{
		Mode:               r.Mode,
		MaxFaults:          r.MaxFaults,
		Patterns:           r.Patterns,
		PatternsPruned:     r.PatternsPruned,
		Scenarios:          r.Scenarios,
		BisectionRuns:      r.BisectionRuns,
		WorstSlack:         r.WorstSlack,
		WorstSlackProc:     int(r.WorstSlackProc),
		MinUtility:         r.MinUtility,
		MinUtilityFaultsAt: r.MinUtilityFaultsAt,
	}
}

// Report converts a wire report back to certify.Report.
func (j CertifyReportJSON) Report() certify.Report {
	return certify.Report{
		Mode:               j.Mode,
		MaxFaults:          j.MaxFaults,
		Patterns:           j.Patterns,
		PatternsPruned:     j.PatternsPruned,
		Scenarios:          j.Scenarios,
		BisectionRuns:      j.BisectionRuns,
		WorstSlack:         j.WorstSlack,
		WorstSlackProc:     model.ProcessID(j.WorstSlackProc),
		MinUtility:         j.MinUtility,
		MinUtilityFaultsAt: j.MinUtilityFaultsAt,
	}
}

// CycleJSONOf converts a scenario to its wire form.
func CycleJSONOf(sc runtime.Scenario) CycleJSON {
	c := CycleJSON{Durations: sc.Durations}
	for _, f := range sc.FaultsAt {
		if f != 0 {
			c.FaultsAt = sc.FaultsAt
			break
		}
	}
	return c
}

// Scenario materialises the wire cycle as a runtime scenario; NFaults is
// derived from the fault counts. Model validation (sizes, duration
// bounds, fault budget) is the caller's job via Scenario.Validate.
func (c CycleJSON) Scenario() runtime.Scenario {
	sc := runtime.Scenario{Durations: c.Durations, FaultsAt: c.FaultsAt}
	if sc.FaultsAt == nil {
		sc.FaultsAt = make([]int, len(c.Durations))
	}
	for _, f := range sc.FaultsAt {
		sc.NFaults += f
	}
	return sc
}

// ResultJSON converts one dispatch outcome to its wire form. The Result's
// slices are dispatcher-owned scratch, so everything kept is copied.
func ResultJSON(res *runtime.Result) CycleResultJSON {
	out := CycleResultJSON{
		Utility:        res.Utility,
		Makespan:       res.Makespan,
		FinalNode:      res.FinalNode,
		Switches:       res.Switches,
		Recoveries:     res.Recoveries,
		FaultsConsumed: res.FaultsConsumed,
		Energy:         res.Energy,
	}
	for _, v := range res.HardViolations {
		out.HardViolations = append(out.HardViolations, int(v))
	}
	return out
}
