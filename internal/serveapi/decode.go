package serveapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ftsched/internal/appio"
	"ftsched/internal/certify"
	"ftsched/internal/chaos"
	"ftsched/internal/core"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
)

// MaxRequestBytes bounds the request bodies the server reads — large
// enough for a batch of ~100k cycles on a 50-process application, small
// enough that a hostile body cannot exhaust memory.
const MaxRequestBytes = 32 << 20

// MaxTreeSize bounds the per-request synthesis size (FTQSOptions.M) a
// server accepts, so one request cannot monopolise a shared process with
// an absurd tree.
const MaxTreeSize = 4096

// badRequest builds a 400 *Error.
func badRequest(kind, format string, args ...any) *Error {
	return &Error{Code: http.StatusBadRequest, Kind: kind, Message: fmt.Sprintf(format, args...)}
}

// sniffFormat applies the format-sniffing discipline: the body must be a
// JSON object whose "format" field is FormatV1. It mirrors the tree
// decoders — version first, layout second — so v1 bodies keep decoding
// against any future server.
func sniffFormat(data []byte) *Error {
	var env struct {
		Format *string `json:"format"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return badRequest(KindBadRequest, "request body is not a JSON object: %v", err)
	}
	if env.Format == nil {
		return badRequest(KindUnknownFormat, "request carries no format field (want %q)", FormatV1)
	}
	if *env.Format != FormatV1 {
		return badRequest(KindUnknownFormat, "unsupported api format %q (want %q)", *env.Format, FormatV1)
	}
	return nil
}

// decodeInto sniffs the format and unmarshals the body. Unknown fields
// are tolerated (forward compatibility within v1); unknown formats are
// not.
func decodeInto(data []byte, dst any) *Error {
	if werr := sniffFormat(data); werr != nil {
		return werr
	}
	if err := json.Unmarshal(data, dst); err != nil {
		return badRequest(KindBadRequest, "decoding request: %v", err)
	}
	return nil
}

// emptyRaw reports an absent embedded document (missing field or JSON
// null — encoding/json hands both to RawMessage).
func emptyRaw(raw json.RawMessage) bool {
	return len(raw) == 0 || string(raw) == "null"
}

// checkRef validates that a request addresses a tree at all.
func checkRef(ref TreeRef) *Error {
	if ref.TreeKey == "" && emptyRaw(ref.App) {
		return badRequest(KindBadRequest, "request references no tree: set tree_key or embed app")
	}
	return nil
}

// checkOptions bounds wire synthesis options.
func checkOptions(o FTQSOptionsJSON) *Error {
	if o.M > MaxTreeSize {
		return &Error{Code: http.StatusBadRequest, Kind: KindInvalidConfig, Field: "M",
			Message: fmt.Sprintf("tree size M %d exceeds the server bound %d", o.M, MaxTreeSize)}
	}
	if o.Workers < 0 {
		return &Error{Code: http.StatusBadRequest, Kind: KindInvalidConfig, Field: "Workers",
			Message: fmt.Sprintf("Workers must be non-negative (got %d)", o.Workers)}
	}
	return nil
}

// DecodeSynthesizeRequest decodes and validates a synthesis request.
func DecodeSynthesizeRequest(data []byte) (*SynthesizeRequest, *Error) {
	var req SynthesizeRequest
	if werr := decodeInto(data, &req); werr != nil {
		return nil, werr
	}
	if emptyRaw(req.App) {
		return nil, badRequest(KindBadRequest, "synthesize request embeds no app")
	}
	if werr := checkOptions(req.Options); werr != nil {
		return nil, werr
	}
	return &req, nil
}

// DecodeEvalRequest decodes an evaluation request and validates its
// config through sim.MCConfig.Validate — the decoded request carries the
// normalised config, so the server runs exactly what the library would.
func DecodeEvalRequest(data []byte) (*EvalRequest, sim.MCConfig, *Error) {
	var req EvalRequest
	if werr := decodeInto(data, &req); werr != nil {
		return nil, sim.MCConfig{}, werr
	}
	if werr := checkRef(req.TreeRef); werr != nil {
		return nil, sim.MCConfig{}, werr
	}
	if req.Options != nil {
		if werr := checkOptions(*req.Options); werr != nil {
			return nil, sim.MCConfig{}, werr
		}
	}
	cfg, err := req.Config.MCConfig()
	if err != nil {
		return nil, sim.MCConfig{}, WireError(err)
	}
	return &req, cfg, nil
}

// DecodeCertifyRequest decodes a certification request and validates its
// config through certify.Config.Validate.
func DecodeCertifyRequest(data []byte) (*CertifyRequest, certify.Config, *Error) {
	var req CertifyRequest
	if werr := decodeInto(data, &req); werr != nil {
		return nil, certify.Config{}, werr
	}
	if werr := checkRef(req.TreeRef); werr != nil {
		return nil, certify.Config{}, werr
	}
	if req.Options != nil {
		if werr := checkOptions(*req.Options); werr != nil {
			return nil, certify.Config{}, werr
		}
	}
	cfg, err := req.Config.CertifyConfig()
	if err != nil {
		return nil, certify.Config{}, WireError(err)
	}
	return &req, cfg, nil
}

// DecodeChaosRequest decodes a chaos-campaign request and validates its
// config through chaos.Config.Validate.
func DecodeChaosRequest(data []byte) (*ChaosRequest, chaos.Config, *Error) {
	var req ChaosRequest
	if werr := decodeInto(data, &req); werr != nil {
		return nil, chaos.Config{}, werr
	}
	if werr := checkRef(req.TreeRef); werr != nil {
		return nil, chaos.Config{}, werr
	}
	if req.Options != nil {
		if werr := checkOptions(*req.Options); werr != nil {
			return nil, chaos.Config{}, werr
		}
	}
	cfg, err := req.Config.ChaosConfig()
	if err != nil {
		return nil, chaos.Config{}, WireError(err)
	}
	return &req, cfg, nil
}

// DecodeDispatchRequest decodes a batch dispatch request. Per-cycle
// model validation needs the application and happens in the server once
// the tree is resolved.
func DecodeDispatchRequest(data []byte) (*DispatchRequest, *Error) {
	var req DispatchRequest
	if werr := decodeInto(data, &req); werr != nil {
		return nil, werr
	}
	if werr := checkRef(req.TreeRef); werr != nil {
		return nil, werr
	}
	if req.Options != nil {
		if werr := checkOptions(*req.Options); werr != nil {
			return nil, werr
		}
	}
	if len(req.Cycles) == 0 {
		return nil, badRequest(KindBadRequest, "dispatch request carries no cycles")
	}
	if req.Workers < 0 {
		return nil, &Error{Code: http.StatusBadRequest, Kind: KindInvalidConfig, Field: "Workers",
			Message: fmt.Sprintf("Workers must be non-negative (got %d)", req.Workers)}
	}
	for i, c := range req.Cycles {
		if len(c.Durations) == 0 {
			return nil, badRequest(KindBadRequest, "cycle %d carries no durations", i)
		}
		if c.FaultsAt != nil && len(c.FaultsAt) != len(c.Durations) {
			return nil, badRequest(KindBadRequest, "cycle %d: %d fault counts for %d durations",
				i, len(c.FaultsAt), len(c.Durations))
		}
	}
	return &req, nil
}

// DecodeReloadRequest decodes a hot-reload request.
func DecodeReloadRequest(data []byte) (*ReloadRequest, *Error) {
	var req ReloadRequest
	if werr := decodeInto(data, &req); werr != nil {
		return nil, werr
	}
	if req.TreeKey == "" {
		return nil, badRequest(KindBadRequest, "reload request names no tree_key")
	}
	if req.Trim != nil && req.Trim.Scenarios <= 0 {
		return nil, &Error{Code: http.StatusBadRequest, Kind: KindInvalidConfig, Field: "Scenarios",
			Message: fmt.Sprintf("trim Scenarios must be positive (got %d)", req.Trim.Scenarios)}
	}
	return &req, nil
}

// WireError maps any library error onto the typed wire error, preserving
// the field names the typed config errors carry. Unknown errors become
// KindInternal — the one kind clients should treat as a server bug.
func WireError(err error) *Error {
	var werr *Error
	if errors.As(err, &werr) {
		return werr
	}
	var mcErr *sim.ConfigError
	if errors.As(err, &mcErr) {
		return &Error{Code: http.StatusBadRequest, Kind: KindInvalidConfig, Field: mcErr.Field, Message: mcErr.Error()}
	}
	var certErr *certify.ConfigError
	if errors.As(err, &certErr) {
		return &Error{Code: http.StatusBadRequest, Kind: KindInvalidConfig, Field: certErr.Field, Message: certErr.Error()}
	}
	var chaosErr *chaos.ConfigError
	if errors.As(err, &chaosErr) {
		return &Error{Code: http.StatusBadRequest, Kind: KindInvalidConfig, Field: chaosErr.Field, Message: chaosErr.Error()}
	}
	var decErr *appio.DecodeError
	if errors.As(err, &decErr) {
		return &Error{Code: http.StatusBadRequest, Kind: KindInvalidApp, Message: decErr.Error()}
	}
	var sampleErr *sim.SampleError
	if errors.As(err, &sampleErr) {
		return &Error{Code: http.StatusBadRequest, Kind: KindBadRequest, Message: sampleErr.Error()}
	}
	var scenarioErr *runtime.ScenarioSizeError
	if errors.As(err, &scenarioErr) {
		return &Error{Code: http.StatusBadRequest, Kind: KindBadRequest, Message: scenarioErr.Error()}
	}
	if errors.Is(err, core.ErrUnschedulable) {
		return &Error{Code: http.StatusUnprocessableEntity, Kind: KindUnschedulable, Message: err.Error()}
	}
	return &Error{Code: http.StatusInternalServerError, Kind: KindInternal, Message: err.Error()}
}
