// Package serveapi is the versioned wire contract of the ftserved
// scheduling service: the JSON request and response DTOs shared by the
// server (internal/serve), the public client package, and the remote modes
// of the command-line tools.
//
// # Format discipline
//
// Every request body carries a "format" field tagged FormatV1
// ("ftsched-api/v1") — the same format-sniffing discipline as the tree
// encodings (ftsched-tree/v2, /v3): decoders sniff the format first and
// reject anything else with a typed *Error, so a future v2 can change any
// layout while v1 bodies keep decoding forever. Responses echo the format.
// Unknown fields are ignored (forward compatibility within a version);
// unknown formats are not.
//
// # Validation discipline
//
// Request decoding reuses the library's config validation verbatim:
// sim.MCConfig.Validate, certify.Config.Validate and chaos.Config.Validate
// run on the decoded payload, and their typed errors
// (*sim.ConfigError, *certify.ConfigError, *chaos.ConfigError) are mapped
// onto the wire *Error with Kind KindInvalidConfig and the offending field
// name — so the CLI, the library and the wire reject bad input
// identically.
//
// # Identifier discipline
//
// Processes are referenced by integer ProcessID on the wire (the index in
// the application's process order, which is stable for a given application
// encoding); tree nodes by NodeID. Scenario durations are positional
// arrays indexed by ProcessID, mirroring runtime.Scenario. Only the
// counterexample embedded in a failed certification uses the name-keyed
// appio counterexample format, because it is replayed through
// ftsim -replay.
package serveapi
