package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 30, 31}, {math.MaxInt64, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every sample must fall within its bucket's bounds.
	for _, v := range []int64{0, 1, 2, 3, 5, 100, 65535, 1 << 40} {
		i := bucketIndex(v)
		if v > BucketBound(i) {
			t.Errorf("value %d above bound %d of its bucket %d", v, BucketBound(i), i)
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Errorf("value %d also fits bucket %d", v, i-1)
		}
	}
}

func TestMetricsCountersAndHistograms(t *testing.T) {
	m := NewMetrics()
	m.Add(DispatchCycles, 3)
	m.Add(DispatchCycles, 2)
	m.Observe(DispatchHardSlack, 10)
	m.ObserveN(DispatchHardSlack, -4, 2)
	if got := m.Counter(DispatchCycles); got != 5 {
		t.Errorf("DispatchCycles = %d, want 5", got)
	}
	s := m.Snapshot()
	if got := s.Counters[DispatchCycles.Name()]; got != 5 {
		t.Errorf("snapshot counter = %d, want 5", got)
	}
	hs := s.Histograms[DispatchHardSlack.Name()]
	if hs.Count != 3 || hs.Sum != 10-8 {
		t.Errorf("histogram count/sum = %d/%d, want 3/2", hs.Count, hs.Sum)
	}
	var le0 int64
	for _, b := range hs.Buckets {
		if b.Le == 0 {
			le0 = b.Count
		}
	}
	if le0 != 2 {
		t.Errorf("≤0 bucket holds %d samples, want 2 (negative slack)", le0)
	}
	if want := float64(2) / 3; math.Abs(hs.Mean()-want) > 1e-12 {
		t.Errorf("Mean() = %v, want %v", hs.Mean(), want)
	}

	m.Reset()
	s = m.Snapshot()
	if s.Counters[DispatchCycles.Name()] != 0 || s.Histograms[DispatchHardSlack.Name()].Count != 0 {
		t.Error("Reset left state behind")
	}
}

func TestMetricsOutOfRangeIgnored(t *testing.T) {
	m := NewMetrics()
	m.Add(Counter(-1), 1)
	m.Add(Counter(NumCounters), 1)
	m.Observe(Histogram(-1), 1)
	m.Observe(Histogram(NumHistograms), 1)
	m.ObserveN(MCUtility, 1, 0) // n <= 0 is a no-op
	s := m.Snapshot()
	for name, v := range s.Counters {
		if v != 0 {
			t.Errorf("counter %s = %d after out-of-range writes", name, v)
		}
	}
	if s.Histograms[MCUtility.Name()].Count != 0 {
		t.Error("ObserveN with n=0 recorded samples")
	}
}

func TestMetricsConcurrentEmitters(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add(MCScenarios, 1)
				m.Observe(MCUtility, int64(i%37))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter(MCScenarios); got != workers*per {
		t.Errorf("MCScenarios = %d, want %d", got, workers*per)
	}
	if got := m.Snapshot().Histograms[MCUtility.Name()].Count; got != workers*per {
		t.Errorf("MCUtility count = %d, want %d", got, workers*per)
	}
}

func TestSinkAllocFree(t *testing.T) {
	m := NewMetrics()
	var s Sink = m
	allocs := testing.AllocsPerRun(200, func() {
		s.Add(DispatchCycles, 1)
		s.Observe(DispatchGuardDepth, 3)
		s.ObserveN(DispatchHardSlack, 17, 4)
	})
	if allocs != 0 {
		t.Errorf("live sink allocates %.1f times per event batch, want 0", allocs)
	}
	var nop Sink = NopSink{}
	allocs = testing.AllocsPerRun(200, func() {
		nop.Add(DispatchCycles, 1)
		nop.Observe(DispatchGuardDepth, 3)
	})
	if allocs != 0 {
		t.Errorf("NopSink allocates %.1f times per event batch, want 0", allocs)
	}
}

func TestLive(t *testing.T) {
	if Live(nil) || Live(NopSink{}) {
		t.Error("nil / NopSink reported live")
	}
	if !Live(NewMetrics()) {
		t.Error("Metrics reported not live")
	}
}

func TestNamesComplete(t *testing.T) {
	for c := Counter(0); c < numCounters; c++ {
		if c.Name() == "" || counterHelp[c] == "" {
			t.Errorf("counter %d has no name or help", c)
		}
		if !strings.HasPrefix(c.Name(), "ftsched_") {
			t.Errorf("counter name %q lacks the ftsched_ prefix", c.Name())
		}
	}
	for h := Histogram(0); h < numHistograms; h++ {
		if h.Name() == "" || histogramHelp[h] == "" {
			t.Errorf("histogram %d has no name or help", h)
		}
	}
	if Counter(-1).Name() != "" || Histogram(99).Name() != "" {
		t.Error("out-of-range Name not empty")
	}
}
