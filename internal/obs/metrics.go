package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets is the fixed bucket count of every histogram: bucket 0 holds
// values ≤ 0, bucket i (1 ≤ i ≤ numBuckets-2) holds values in
// [2^(i-1), 2^i - 1], and the last bucket is the +Inf overflow. The
// power-of-two geometry keeps Observe at a bits.Len64 — no search, no
// per-histogram bucket tables — while spanning 1 to 2^31 with ≤ 2×
// relative error, enough for search depths, slacks in model.Time units
// and utilities alike.
const numBuckets = 34

// bucketIndex maps a sample to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > numBuckets-1 {
		return numBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i
// (math.MaxInt64 for the overflow bucket, 0 for the ≤0 bucket).
func BucketBound(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= numBuckets-1:
		return math.MaxInt64
	default:
		return int64(1)<<uint(i) - 1
	}
}

// hist is one atomic fixed-bucket histogram.
type hist struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Metrics is the live Sink: fixed arrays of atomic counters and
// fixed-bucket histograms. It allocates only at construction and in
// Snapshot; the event path is an array index plus atomic adds, safe for
// any number of concurrent emitters. The zero value is NOT ready to use —
// construct with NewMetrics (the pointer identity is what emitters share).
type Metrics struct {
	counters [numCounters]atomic.Int64
	hists    [numHistograms]hist
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics { return &Metrics{} }

// Add implements Sink.
func (m *Metrics) Add(c Counter, delta int64) {
	if c < 0 || c >= numCounters {
		return
	}
	m.counters[c].Add(delta)
}

// Observe implements Sink.
func (m *Metrics) Observe(h Histogram, v int64) { m.ObserveN(h, v, 1) }

// ObserveN implements Sink.
func (m *Metrics) ObserveN(h Histogram, v int64, n int64) {
	if h < 0 || h >= numHistograms || n <= 0 {
		return
	}
	hs := &m.hists[h]
	hs.buckets[bucketIndex(v)].Add(n)
	hs.count.Add(n)
	hs.sum.Add(v * n)
}

// Counter returns the current value of one counter.
func (m *Metrics) Counter(c Counter) int64 {
	if c < 0 || c >= numCounters {
		return 0
	}
	return m.counters[c].Load()
}

// Reset zeroes every counter and histogram. Not atomic with respect to
// concurrent emitters: totals observed across a Reset may be torn. Use it
// between phases of a CLI run, not under load.
func (m *Metrics) Reset() {
	for i := range m.counters {
		m.counters[i].Store(0)
	}
	for i := range m.hists {
		h := &m.hists[i]
		h.count.Store(0)
		h.sum.Store(0)
		for j := range h.buckets {
			h.buckets[j].Store(0)
		}
	}
}

// Bucket is one histogram bucket of a Snapshot: Count samples with value
// ≤ Le (non-cumulative; Le is math.MaxInt64 for the overflow bucket).
type Bucket struct {
	Le    int64
	Count int64
}

// HistogramSnapshot is the point-in-time state of one histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []Bucket
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a Metrics collector, keyed by the
// stable metric names. It is what the expvar endpoint serialises and what
// library users inspect programmatically.
type Snapshot struct {
	Counters   map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the current state. Counters and histograms are read
// without a global lock, so a snapshot taken under load is per-metric
// consistent, not globally consistent — fine for monitoring.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64, int(numCounters)),
		Histograms: make(map[string]HistogramSnapshot, int(numHistograms)),
	}
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[counterNames[c]] = m.counters[c].Load()
	}
	for h := Histogram(0); h < numHistograms; h++ {
		hs := &m.hists[h]
		snap := HistogramSnapshot{
			Count: hs.count.Load(),
			Sum:   hs.sum.Load(),
		}
		for i := range hs.buckets {
			if n := hs.buckets[i].Load(); n != 0 {
				snap.Buckets = append(snap.Buckets, Bucket{Le: BucketBound(i), Count: n})
			}
		}
		s.Histograms[histogramNames[h]] = snap
	}
	return s
}
