package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Add(DispatchCycles, 7)
	m.Observe(DispatchHardSlack, 5)
	m.Observe(DispatchHardSlack, 100)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, w := range []string{
		"# TYPE ftsched_dispatch_cycles_total counter",
		"ftsched_dispatch_cycles_total 7",
		"# TYPE ftsched_dispatch_hard_slack histogram",
		`ftsched_dispatch_hard_slack_bucket{le="+Inf"} 2`,
		"ftsched_dispatch_hard_slack_sum 105",
		"ftsched_dispatch_hard_slack_count 2",
		// Untouched metrics render too.
		"ftsched_montecarlo_runs_total 0",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("prometheus output missing %q", w)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals the count, and
	// no le-series decreases.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "ftsched_dispatch_hard_slack_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscan(line, &n); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if n < last {
			t.Errorf("bucket series decreases at %q", line)
		}
		last = n
	}
}

// fmtSscan extracts the trailing integer of a metric line.
func fmtSscan(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*n, err = parseInt(line[i+1:])
	return 0, err
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		v = v*10 + int64(r-'0')
	}
	return v, nil
}

func TestServeEndpoints(t *testing.T) {
	m := NewMetrics()
	m.Add(MCRuns, 1)
	addr, stop, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, "ftsched_montecarlo_runs_total 1") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	vars := get("/debug/vars")
	var payload map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &payload); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := payload["ftsched"]; !ok {
		t.Errorf("/debug/vars lacks the ftsched variable: %s", vars)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload["ftsched"], &snap); err != nil {
		t.Fatalf("ftsched expvar payload: %v", err)
	}
	if snap.Counters[MCRuns.Name()] != 1 {
		t.Errorf("expvar snapshot counter = %d, want 1", snap.Counters[MCRuns.Name()])
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestHandlerFollowsLatestCollector(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Add(MCRuns, 1)
	b.Add(MCRuns, 2)
	_ = Handler(a)
	_ = Handler(b)
	if got := published.Load(); got != b {
		t.Error("expvar publication does not follow the latest Handler call")
	}
}

// TestServeShutdownFlushesInFlightScrape pins the graceful-shutdown
// contract: a scrape whose request the server has already started reading
// when shutdown is called still receives its complete body — the drain
// path never truncates a scrape mid-flight. Shutdown is also idempotent.
func TestServeShutdownFlushesInFlightScrape(t *testing.T) {
	m := NewMetrics()
	m.Add(DispatchCycles, 41)
	addr, shutdown, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Write a partial request so the connection is active (not idle) when
	// shutdown begins; Shutdown must then wait it out, not kill it.
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\n"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- shutdown() }()
	time.Sleep(50 * time.Millisecond)

	if _, err := io.WriteString(conn, "Host: t\r\nConnection: close\r\n\r\n"); err != nil {
		t.Fatalf("finishing in-flight request: %v", err)
	}
	body, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("reading in-flight scrape: %v", err)
	}
	if !strings.Contains(string(body), "ftsched_dispatch_cycles_total 41") {
		t.Fatalf("scrape during shutdown truncated:\n%.400s", body)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("second shutdown not idempotent: %v", err)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
