package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// WritePrometheus renders the collector in the Prometheus text exposition
// format (version 0.0.4): every counter as a `counter`, every histogram as
// a `histogram` with cumulative le-labelled buckets, _sum and _count.
// Never-incremented metrics are rendered too, so scrapers see the full
// schema from the first scrape.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	for c := Counter(0); c < numCounters; c++ {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			counterNames[c], counterHelp[c], counterNames[c],
			counterNames[c], m.counters[c].Load()); err != nil {
			return err
		}
	}
	for h := Histogram(0); h < numHistograms; h++ {
		name := histogramNames[h]
		hs := &m.hists[h]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			name, histogramHelp[h], name); err != nil {
			return err
		}
		var cum int64
		for i := 0; i < numBuckets; i++ {
			cum += hs.buckets[i].Load()
			le := "+Inf"
			if i < numBuckets-1 {
				le = fmt.Sprintf("%d", BucketBound(i))
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n",
			name, hs.sum.Load(), name, hs.count.Load()); err != nil {
			return err
		}
	}
	return nil
}

// published is the Metrics instance the process-wide expvar variable
// "ftsched" reads from; Handler installs its collector here. expvar's
// registry is append-only, so the variable is registered once and
// indirects through this pointer.
var (
	published   atomic.Pointer[Metrics]
	publishOnce sync.Once
)

// publishExpvar registers m as the process's expvar-visible collector.
func publishExpvar(m *Metrics) {
	published.Store(m)
	publishOnce.Do(func() {
		expvar.Publish("ftsched", expvar.Func(func() any {
			p := published.Load()
			if p == nil {
				return nil
			}
			return p.Snapshot()
		}))
	})
}

// Handler returns the observability endpoint for one collector:
//
//	/metrics        Prometheus text exposition format
//	/debug/vars     expvar JSON (the collector is the "ftsched" variable)
//	/debug/pprof/   net/http/pprof profiles
//
// The collector is also published to the process-wide expvar registry; if
// Handler is called for several collectors the expvar variable follows
// the most recent one (each handler's own /metrics stays bound to its
// collector).
func Handler(m *Metrics) http.Handler {
	publishExpvar(m)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MarshalJSON serialises a Snapshot for expvar.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type plain Snapshot // avoid recursing into this method
	return json.Marshal(plain(s))
}

// Serve starts an HTTP server for Handler(m) on addr (":0" picks a free
// port) and returns the bound address plus a shutdown function. The server
// runs until the shutdown function is called or the process exits; serving
// errors after shutdown are discarded.
//
// Shutdown is graceful: the listener stops accepting, in-flight scrapes
// run to completion (bounded by serveShutdownTimeout, after which
// connections are torn down), and only then does the function return —
// so a process draining on SIGTERM never truncates a scrape mid-body.
// The function is idempotent and safe to call from several goroutines.
func Serve(addr string, m *Metrics) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(m)}
	go func() { _ = srv.Serve(ln) }()
	var once sync.Once
	var shutdownErr error
	shutdown := func() error {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), serveShutdownTimeout)
			defer cancel()
			shutdownErr = srv.Shutdown(ctx)
			if shutdownErr != nil {
				// The deadline passed with a scrape still running; tear
				// the connections down rather than hang the exit path.
				shutdownErr = srv.Close()
			}
		})
		return shutdownErr
	}
	return ln.Addr().String(), shutdown, nil
}

// serveShutdownTimeout bounds how long Serve's shutdown waits for
// in-flight scrapes before tearing connections down.
const serveShutdownTimeout = 5 * time.Second
