package obs

// Counter identifies one monotonic event counter. The enumeration is
// closed so emitters pay an array index per event and exporters can render
// the complete metric set without registration.
type Counter int

const (
	// FTQSNodesExpanded counts tree nodes whose candidate children were
	// generated and attached during FTQS synthesis.
	FTQSNodesExpanded Counter = iota
	// FTQSMemoHits and FTQSMemoMisses count suffix-synthesis memoisation
	// cache lookups (internal/core.suffixMemo).
	FTQSMemoHits
	FTQSMemoMisses
	// FTQSCandidatesKept counts candidate sub-schedules that survived
	// interval partitioning and were offered to the coordinator.
	FTQSCandidatesKept
	// FTQSCandidatesRejected counts candidate sub-schedules discarded as
	// infeasible, identical to the parent's continuation, or below the
	// minimum utility gain.
	FTQSCandidatesRejected
	// FTQSPrefetchHits counts node expansions served from a speculative
	// prefetched future; FTQSPrefetchMisses counts expansions computed on
	// the spot. Their ratio measures how well speculation tracks the
	// coordinator's expansion order.
	FTQSPrefetchHits
	FTQSPrefetchMisses
	// FTQSWorkerBusyNanos accumulates nanoseconds spent inside candidate
	// generation across all synthesis workers; against wall-clock time it
	// yields worker utilisation.
	FTQSWorkerBusyNanos

	// DispatchCycles counts operation cycles executed by a Dispatcher.
	DispatchCycles
	// DispatchSwitches counts quasi-static schedule switches taken.
	DispatchSwitches
	// DispatchFaultsAbsorbed counts re-executions performed (faults
	// absorbed by recovery slack); DispatchFaultsAbandoned counts
	// processes abandoned because their recovery budget was exhausted.
	DispatchFaultsAbsorbed
	DispatchFaultsAbandoned
	// DispatchGuardFallbacks counts mid-cycle switches whose target was
	// unusable (out-of-range node, missing schedule); the dispatcher fell
	// back to the root f-schedule (or stayed put) instead of panicking.
	// Non-zero values indicate a corrupted dispatch table.
	DispatchGuardFallbacks

	// MCRuns counts Monte-Carlo evaluations; MCScenarios counts simulated
	// scenarios across all evaluations.
	MCRuns
	MCScenarios

	// TrimArcsEvaluated counts switch arcs whose removal was priced by
	// paired replay; TrimArcsRemoved counts arcs actually removed;
	// TrimReplays counts scenario replays performed while pricing.
	TrimArcsEvaluated
	TrimArcsRemoved
	TrimReplays

	// CertifyScenarios counts adversarial scenarios executed through the
	// dispatcher by the certification engine; CertifyPatterns counts fault
	// patterns certified; CertifyPatternsPruned counts fault patterns
	// skipped because bitset canonicalisation proved them equivalent to an
	// already-enumerated pattern; CertifyBisectionRuns counts the probe
	// executions spent locating guard-boundary execution times.
	CertifyScenarios
	CertifyPatterns
	CertifyPatternsPruned
	CertifyBisectionRuns

	// EnvelopeOverruns counts executions whose sampled duration exceeded
	// the process WCET — the dispatcher left the paper's fault model.
	EnvelopeOverruns
	// EnvelopeExtraFaults counts transient faults consumed beyond the
	// application bound k (the k+1-th and later faults of a cycle).
	EnvelopeExtraFaults
	// EnvelopeTimeRegressions counts executions whose reported duration
	// was negative — observed time ran backwards mid-cycle.
	EnvelopeTimeRegressions
	// EnvelopeSheds counts cycles in which PolicyShedSoft dropped the
	// remaining soft work and fell back to the emergency hard-only suffix.
	EnvelopeSheds
	// EnvelopeBudgetExhausted counts BudgetExhausted violation events: a
	// process abandoned after its recovery budget ran out. Unlike
	// DispatchFaultsAbandoned it excludes soft processes a shedding
	// envelope abandoned early (their budget was not exhausted).
	EnvelopeBudgetExhausted

	// ChaosCycles counts operation cycles executed by a chaos campaign;
	// ChaosInjections counts cycles the injector perturbed out of model.
	ChaosCycles
	ChaosInjections

	// DispatchEnergy accumulates the total platform energy (active + idle,
	// rounded to integer energy units) consumed across dispatched cycles.
	DispatchEnergy

	// ServeRequests counts API requests admitted by ftserved (all
	// endpoints, after admission control); ServeRejectedRate counts
	// requests rejected by a tenant's token bucket (HTTP 429) and
	// ServeRejectedLoad requests rejected by an in-flight cap or because
	// the server was draining (HTTP 503). Admitted + rejected = offered
	// load.
	ServeRequests
	ServeRejectedRate
	ServeRejectedLoad
	// ServeCacheHits and ServeCacheMisses count compiled-tree cache
	// lookups by outcome; a miss implies a synthesis + dispatcher
	// compilation on the request path. ServeReloads counts hot
	// recompilations swapped in behind the atomic tree pointer.
	ServeCacheHits
	ServeCacheMisses
	ServeReloads
	// ServeShed counts requests to expensive endpoints (certify, chaos)
	// rejected because the server was degraded by sustained overload;
	// ServeDegraded counts transitions of the health state machine into
	// the degraded state.
	ServeShed
	ServeDegraded

	// FaultwireInjections counts wire faults injected by the faultwire
	// middleware (all kinds); the per-kind counters below sum to it.
	FaultwireInjections
	FaultwireLatency
	FaultwireErrors
	FaultwireResets
	FaultwireTruncates
	FaultwireCorrupts

	// ClientRequests counts logical API calls issued by the retrying
	// client; ClientAttempts counts HTTP attempts (>= requests);
	// ClientRetries counts re-attempts after a retryable failure;
	// ClientRetriesExhausted counts calls that failed with a
	// RetryExhaustedError after the attempt budget ran out.
	ClientRequests
	ClientAttempts
	ClientRetries
	ClientRetriesExhausted
	// ClientBreakerOpened / ClientBreakerClosed count circuit-breaker
	// state transitions; ClientBreakerProbes counts half-open probe
	// attempts; ClientBreakerFastFails counts attempts short-circuited
	// while the breaker was open.
	ClientBreakerOpened
	ClientBreakerClosed
	ClientBreakerProbes
	ClientBreakerFastFails

	numCounters
)

// NumCounters is the size of the counter enumeration, for sinks that back
// counters with fixed arrays.
const NumCounters = int(numCounters)

// counterNames are the Prometheus/expvar metric names, indexed by Counter.
var counterNames = [numCounters]string{
	FTQSNodesExpanded:       "ftsched_ftqs_nodes_expanded_total",
	FTQSMemoHits:            "ftsched_ftqs_memo_hits_total",
	FTQSMemoMisses:          "ftsched_ftqs_memo_misses_total",
	FTQSCandidatesKept:      "ftsched_ftqs_candidates_kept_total",
	FTQSCandidatesRejected:  "ftsched_ftqs_candidates_rejected_total",
	FTQSPrefetchHits:        "ftsched_ftqs_prefetch_hits_total",
	FTQSPrefetchMisses:      "ftsched_ftqs_prefetch_misses_total",
	FTQSWorkerBusyNanos:     "ftsched_ftqs_worker_busy_nanoseconds_total",
	DispatchCycles:          "ftsched_dispatch_cycles_total",
	DispatchSwitches:        "ftsched_dispatch_switches_total",
	DispatchFaultsAbsorbed:  "ftsched_dispatch_faults_absorbed_total",
	DispatchFaultsAbandoned: "ftsched_dispatch_faults_abandoned_total",
	DispatchGuardFallbacks:  "ftsched_dispatch_guard_fallbacks_total",
	MCRuns:                  "ftsched_montecarlo_runs_total",
	MCScenarios:             "ftsched_montecarlo_scenarios_total",
	TrimArcsEvaluated:       "ftsched_trim_arcs_evaluated_total",
	TrimArcsRemoved:         "ftsched_trim_arcs_removed_total",
	TrimReplays:             "ftsched_trim_replays_total",
	CertifyScenarios:        "ftsched_certify_scenarios_total",
	CertifyPatterns:         "ftsched_certify_patterns_total",
	CertifyPatternsPruned:   "ftsched_certify_patterns_pruned_total",
	CertifyBisectionRuns:    "ftsched_certify_bisection_runs_total",
	EnvelopeOverruns:        "ftsched_envelope_overruns_total",
	EnvelopeExtraFaults:     "ftsched_envelope_extra_faults_total",
	EnvelopeTimeRegressions: "ftsched_envelope_time_regressions_total",
	EnvelopeSheds:           "ftsched_envelope_sheds_total",
	EnvelopeBudgetExhausted: "ftsched_envelope_budget_exhausted_total",
	ChaosCycles:             "ftsched_chaos_cycles_total",
	ChaosInjections:         "ftsched_chaos_injections_total",
	DispatchEnergy:          "ftsched_dispatch_energy_total",
	ServeRequests:           "ftsched_serve_requests_total",
	ServeRejectedRate:       "ftsched_serve_rejected_rate_total",
	ServeRejectedLoad:       "ftsched_serve_rejected_load_total",
	ServeCacheHits:          "ftsched_serve_cache_hits_total",
	ServeCacheMisses:        "ftsched_serve_cache_misses_total",
	ServeReloads:            "ftsched_serve_reloads_total",
	ServeShed:               "ftsched_serve_shed_total",
	ServeDegraded:           "ftsched_serve_degraded_transitions_total",
	FaultwireInjections:     "ftsched_faultwire_injections_total",
	FaultwireLatency:        "ftsched_faultwire_latency_injections_total",
	FaultwireErrors:         "ftsched_faultwire_error_injections_total",
	FaultwireResets:         "ftsched_faultwire_reset_injections_total",
	FaultwireTruncates:      "ftsched_faultwire_truncate_injections_total",
	FaultwireCorrupts:       "ftsched_faultwire_corrupt_injections_total",
	ClientRequests:          "ftsched_client_requests_total",
	ClientAttempts:          "ftsched_client_attempts_total",
	ClientRetries:           "ftsched_client_retries_total",
	ClientRetriesExhausted:  "ftsched_client_retries_exhausted_total",
	ClientBreakerOpened:     "ftsched_client_breaker_opened_total",
	ClientBreakerClosed:     "ftsched_client_breaker_closed_total",
	ClientBreakerProbes:     "ftsched_client_breaker_probes_total",
	ClientBreakerFastFails:  "ftsched_client_breaker_fast_fails_total",
}

var counterHelp = [numCounters]string{
	FTQSNodesExpanded:       "Tree nodes expanded during FTQS synthesis.",
	FTQSMemoHits:            "Suffix-synthesis memoisation cache hits.",
	FTQSMemoMisses:          "Suffix-synthesis memoisation cache misses.",
	FTQSCandidatesKept:      "Candidate sub-schedules kept after interval partitioning.",
	FTQSCandidatesRejected:  "Candidate sub-schedules rejected (infeasible, duplicate, or below the gain threshold).",
	FTQSPrefetchHits:        "Node expansions served from a speculative prefetched future.",
	FTQSPrefetchMisses:      "Node expansions computed on demand (no prefetched future).",
	FTQSWorkerBusyNanos:     "Nanoseconds spent in candidate generation across synthesis workers.",
	DispatchCycles:          "Operation cycles executed by the online dispatcher.",
	DispatchSwitches:        "Quasi-static schedule switches taken.",
	DispatchFaultsAbsorbed:  "Faults absorbed by re-execution within recovery slack.",
	DispatchFaultsAbandoned: "Processes abandoned after exhausting their recovery budget.",
	DispatchGuardFallbacks:  "Mid-cycle switches to an unusable node resolved by falling back to the root schedule.",
	MCRuns:                  "Monte-Carlo evaluations performed.",
	MCScenarios:             "Scenarios simulated across all Monte-Carlo evaluations.",
	TrimArcsEvaluated:       "Switch arcs priced by paired scenario replay during trimming.",
	TrimArcsRemoved:         "Switch arcs removed by trimming.",
	TrimReplays:             "Scenario replays performed while pricing arc removals.",
	CertifyScenarios:        "Adversarial scenarios executed through the dispatcher during certification.",
	CertifyPatterns:         "Fault patterns enumerated and certified.",
	CertifyPatternsPruned:   "Fault patterns pruned as canonically equivalent to an enumerated one.",
	CertifyBisectionRuns:    "Probe executions spent bisecting for guard-boundary execution times.",
	EnvelopeOverruns:        "Executions whose duration exceeded the process WCET (out-of-model).",
	EnvelopeExtraFaults:     "Transient faults consumed beyond the application bound k.",
	EnvelopeTimeRegressions: "Executions whose reported duration was negative (time ran backwards).",
	EnvelopeSheds:           "Cycles in which PolicyShedSoft dropped remaining soft work for the emergency hard-only suffix.",
	EnvelopeBudgetExhausted: "Processes abandoned after exhausting their recovery budget (BudgetExhausted violation events).",
	ChaosCycles:             "Operation cycles executed by chaos campaigns.",
	ChaosInjections:         "Chaos-campaign cycles perturbed out of the fault model.",
	DispatchEnergy:          "Total platform energy (active + idle, rounded) consumed across dispatched cycles.",
	ServeRequests:           "API requests admitted past admission control.",
	ServeRejectedRate:       "API requests rejected by a tenant token bucket (HTTP 429).",
	ServeRejectedLoad:       "API requests rejected by an in-flight cap or while draining (HTTP 503).",
	ServeCacheHits:          "Compiled-tree cache lookups served from an existing entry.",
	ServeCacheMisses:        "Compiled-tree cache lookups that synthesised and compiled a new entry.",
	ServeReloads:            "Hot tree recompilations atomically swapped into the cache.",
	ServeShed:               "Expensive-endpoint requests (certify, chaos) shed while the server was degraded.",
	ServeDegraded:           "Health state machine transitions into the degraded state.",
	FaultwireInjections:     "Wire faults injected by the faultwire middleware (all kinds).",
	FaultwireLatency:        "Injected request latency faults.",
	FaultwireErrors:         "Injected typed wire-error responses.",
	FaultwireResets:         "Injected mid-body connection resets.",
	FaultwireTruncates:      "Injected truncated response bodies.",
	FaultwireCorrupts:       "Injected corrupted response bodies.",
	ClientRequests:          "Logical API calls issued by the retrying client.",
	ClientAttempts:          "HTTP attempts issued by the retrying client (>= requests).",
	ClientRetries:           "Client re-attempts after a retryable failure.",
	ClientRetriesExhausted:  "Client calls abandoned after the attempt budget ran out.",
	ClientBreakerOpened:     "Circuit-breaker transitions to the open state.",
	ClientBreakerClosed:     "Circuit-breaker transitions back to the closed state.",
	ClientBreakerProbes:     "Half-open circuit-breaker probe attempts.",
	ClientBreakerFastFails:  "Client attempts short-circuited by an open circuit breaker.",
}

// Name returns the stable metric name of the counter ("" for an
// out-of-range value).
func (c Counter) Name() string {
	if c < 0 || c >= numCounters {
		return ""
	}
	return counterNames[c]
}

// Histogram identifies one fixed-bucket distribution.
type Histogram int

const (
	// DispatchGuardDepth is the binary-search depth (loop iterations over
	// group plus segment tables) of one guard lookup.
	DispatchGuardDepth Histogram = iota
	// DispatchHardSlack is the slack (deadline minus completion time) of a
	// completed hard process; violations land in the ≤0 bucket.
	DispatchHardSlack
	// DispatchSwitchNode is the NodeID switched to when a switch arc is
	// taken — the distribution of switch traffic across the tree.
	DispatchSwitchNode
	// MCUtility is the per-scenario total utility (rounded to integer) of
	// a Monte-Carlo evaluation.
	MCUtility
	// CertifyWorstSlack is the worst (minimum) hard-deadline slack
	// observed per certified fault pattern; values at or below zero would
	// be counterexamples.
	CertifyWorstSlack
	// EnvelopeOverrunMagnitude is the amount by which an execution
	// exceeded its process WCET — the distribution of overrun severity.
	EnvelopeOverrunMagnitude
	// DispatchCycleEnergy is the total platform energy (active + idle,
	// rounded to integer energy units) of one dispatched cycle.
	DispatchCycleEnergy

	// ServeRequestNanos is the wall-clock handler latency of one admitted
	// API request, in nanoseconds (decode, cache lookup or compile,
	// evaluation, encode).
	ServeRequestNanos
	// ServeBatchCycles is the number of cycles carried by one batch
	// dispatch request — the wire amortisation factor.
	ServeBatchCycles

	// ClientAttemptsPerRequest is the number of HTTP attempts one logical
	// client call took (1 = first try succeeded); ClientRetryWaitMillis is
	// the backoff waited before each re-attempt, in milliseconds.
	ClientAttemptsPerRequest
	ClientRetryWaitMillis

	numHistograms
)

// NumHistograms is the size of the histogram enumeration.
const NumHistograms = int(numHistograms)

var histogramNames = [numHistograms]string{
	DispatchGuardDepth: "ftsched_dispatch_guard_search_depth",
	DispatchHardSlack:  "ftsched_dispatch_hard_slack",
	DispatchSwitchNode: "ftsched_dispatch_switch_node",
	MCUtility:          "ftsched_montecarlo_utility",
	CertifyWorstSlack:  "ftsched_certify_worst_slack",

	EnvelopeOverrunMagnitude: "ftsched_envelope_overrun_magnitude",
	DispatchCycleEnergy:      "ftsched_dispatch_cycle_energy",
	ServeRequestNanos:        "ftsched_serve_request_nanoseconds",
	ServeBatchCycles:         "ftsched_serve_batch_cycles",

	ClientAttemptsPerRequest: "ftsched_client_attempts_per_request",
	ClientRetryWaitMillis:    "ftsched_client_retry_wait_milliseconds",
}

var histogramHelp = [numHistograms]string{
	DispatchGuardDepth: "Binary-search depth per guard lookup in the compiled dispatch table.",
	DispatchHardSlack:  "Hard-deadline slack (deadline - completion) per completed hard process; violations fall in the <=0 bucket.",
	DispatchSwitchNode: "Target NodeID per schedule switch taken.",
	MCUtility:          "Per-scenario total utility (rounded) observed by Monte-Carlo evaluation.",
	CertifyWorstSlack:  "Worst hard-deadline slack observed per certified fault pattern.",

	EnvelopeOverrunMagnitude: "Amount by which an execution exceeded its process WCET.",
	DispatchCycleEnergy:      "Total platform energy (active + idle, rounded) per dispatched cycle.",
	ServeRequestNanos:        "Handler latency per admitted API request, nanoseconds.",
	ServeBatchCycles:         "Cycles carried per batch dispatch request.",

	ClientAttemptsPerRequest: "HTTP attempts per logical client call (1 = first try succeeded).",
	ClientRetryWaitMillis:    "Backoff waited before each client re-attempt, milliseconds.",
}

// Name returns the stable metric name of the histogram ("" for an
// out-of-range value).
func (h Histogram) Name() string {
	if h < 0 || h >= numHistograms {
		return ""
	}
	return histogramNames[h]
}

// Sink receives instrumentation events. Implementations must be safe for
// concurrent use and must not allocate: these methods are called from the
// dispatcher's per-cycle hot path, which is asserted to run at zero
// allocations per cycle (see the hot-path rules in the package
// documentation).
type Sink interface {
	// Add increments counter c by delta.
	Add(c Counter, delta int64)
	// Observe records one sample v in histogram h.
	Observe(h Histogram, v int64)
	// ObserveN records n identical samples v in histogram h — the batched
	// form emitters use to flush per-cycle scratch with one call per
	// distinct value.
	ObserveN(h Histogram, v int64, n int64)
}

// NopSink discards every event. Instrumented code treats it exactly like a
// nil sink: a single never-taken branch per cycle, so disabled
// observability is free.
type NopSink struct{}

// Add implements Sink.
func (NopSink) Add(Counter, int64) {}

// Observe implements Sink.
func (NopSink) Observe(Histogram, int64) {}

// ObserveN implements Sink.
func (NopSink) ObserveN(Histogram, int64, int64) {}

// Live reports whether s is a sink worth emitting to: non-nil and not a
// NopSink. Instrumented subsystems normalise through Live once at setup so
// their hot paths test a single pointer.
func Live(s Sink) bool {
	if s == nil {
		return false
	}
	_, nop := s.(NopSink)
	return !nop
}
