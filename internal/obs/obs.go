package obs

// Counter identifies one monotonic event counter. The enumeration is
// closed so emitters pay an array index per event and exporters can render
// the complete metric set without registration.
type Counter int

const (
	// FTQSNodesExpanded counts tree nodes whose candidate children were
	// generated and attached during FTQS synthesis.
	FTQSNodesExpanded Counter = iota
	// FTQSMemoHits and FTQSMemoMisses count suffix-synthesis memoisation
	// cache lookups (internal/core.suffixMemo).
	FTQSMemoHits
	FTQSMemoMisses
	// FTQSCandidatesKept counts candidate sub-schedules that survived
	// interval partitioning and were offered to the coordinator.
	FTQSCandidatesKept
	// FTQSCandidatesRejected counts candidate sub-schedules discarded as
	// infeasible, identical to the parent's continuation, or below the
	// minimum utility gain.
	FTQSCandidatesRejected
	// FTQSPrefetchHits counts node expansions served from a speculative
	// prefetched future; FTQSPrefetchMisses counts expansions computed on
	// the spot. Their ratio measures how well speculation tracks the
	// coordinator's expansion order.
	FTQSPrefetchHits
	FTQSPrefetchMisses
	// FTQSWorkerBusyNanos accumulates nanoseconds spent inside candidate
	// generation across all synthesis workers; against wall-clock time it
	// yields worker utilisation.
	FTQSWorkerBusyNanos

	// DispatchCycles counts operation cycles executed by a Dispatcher.
	DispatchCycles
	// DispatchSwitches counts quasi-static schedule switches taken.
	DispatchSwitches
	// DispatchFaultsAbsorbed counts re-executions performed (faults
	// absorbed by recovery slack); DispatchFaultsAbandoned counts
	// processes abandoned because their recovery budget was exhausted.
	DispatchFaultsAbsorbed
	DispatchFaultsAbandoned

	// MCRuns counts Monte-Carlo evaluations; MCScenarios counts simulated
	// scenarios across all evaluations.
	MCRuns
	MCScenarios

	// TrimArcsEvaluated counts switch arcs whose removal was priced by
	// paired replay; TrimArcsRemoved counts arcs actually removed;
	// TrimReplays counts scenario replays performed while pricing.
	TrimArcsEvaluated
	TrimArcsRemoved
	TrimReplays

	numCounters
)

// NumCounters is the size of the counter enumeration, for sinks that back
// counters with fixed arrays.
const NumCounters = int(numCounters)

// counterNames are the Prometheus/expvar metric names, indexed by Counter.
var counterNames = [numCounters]string{
	FTQSNodesExpanded:       "ftsched_ftqs_nodes_expanded_total",
	FTQSMemoHits:            "ftsched_ftqs_memo_hits_total",
	FTQSMemoMisses:          "ftsched_ftqs_memo_misses_total",
	FTQSCandidatesKept:      "ftsched_ftqs_candidates_kept_total",
	FTQSCandidatesRejected:  "ftsched_ftqs_candidates_rejected_total",
	FTQSPrefetchHits:        "ftsched_ftqs_prefetch_hits_total",
	FTQSPrefetchMisses:      "ftsched_ftqs_prefetch_misses_total",
	FTQSWorkerBusyNanos:     "ftsched_ftqs_worker_busy_nanoseconds_total",
	DispatchCycles:          "ftsched_dispatch_cycles_total",
	DispatchSwitches:        "ftsched_dispatch_switches_total",
	DispatchFaultsAbsorbed:  "ftsched_dispatch_faults_absorbed_total",
	DispatchFaultsAbandoned: "ftsched_dispatch_faults_abandoned_total",
	MCRuns:                  "ftsched_montecarlo_runs_total",
	MCScenarios:             "ftsched_montecarlo_scenarios_total",
	TrimArcsEvaluated:       "ftsched_trim_arcs_evaluated_total",
	TrimArcsRemoved:         "ftsched_trim_arcs_removed_total",
	TrimReplays:             "ftsched_trim_replays_total",
}

var counterHelp = [numCounters]string{
	FTQSNodesExpanded:       "Tree nodes expanded during FTQS synthesis.",
	FTQSMemoHits:            "Suffix-synthesis memoisation cache hits.",
	FTQSMemoMisses:          "Suffix-synthesis memoisation cache misses.",
	FTQSCandidatesKept:      "Candidate sub-schedules kept after interval partitioning.",
	FTQSCandidatesRejected:  "Candidate sub-schedules rejected (infeasible, duplicate, or below the gain threshold).",
	FTQSPrefetchHits:        "Node expansions served from a speculative prefetched future.",
	FTQSPrefetchMisses:      "Node expansions computed on demand (no prefetched future).",
	FTQSWorkerBusyNanos:     "Nanoseconds spent in candidate generation across synthesis workers.",
	DispatchCycles:          "Operation cycles executed by the online dispatcher.",
	DispatchSwitches:        "Quasi-static schedule switches taken.",
	DispatchFaultsAbsorbed:  "Faults absorbed by re-execution within recovery slack.",
	DispatchFaultsAbandoned: "Processes abandoned after exhausting their recovery budget.",
	MCRuns:                  "Monte-Carlo evaluations performed.",
	MCScenarios:             "Scenarios simulated across all Monte-Carlo evaluations.",
	TrimArcsEvaluated:       "Switch arcs priced by paired scenario replay during trimming.",
	TrimArcsRemoved:         "Switch arcs removed by trimming.",
	TrimReplays:             "Scenario replays performed while pricing arc removals.",
}

// Name returns the stable metric name of the counter ("" for an
// out-of-range value).
func (c Counter) Name() string {
	if c < 0 || c >= numCounters {
		return ""
	}
	return counterNames[c]
}

// Histogram identifies one fixed-bucket distribution.
type Histogram int

const (
	// DispatchGuardDepth is the binary-search depth (loop iterations over
	// group plus segment tables) of one guard lookup.
	DispatchGuardDepth Histogram = iota
	// DispatchHardSlack is the slack (deadline minus completion time) of a
	// completed hard process; violations land in the ≤0 bucket.
	DispatchHardSlack
	// DispatchSwitchNode is the NodeID switched to when a switch arc is
	// taken — the distribution of switch traffic across the tree.
	DispatchSwitchNode
	// MCUtility is the per-scenario total utility (rounded to integer) of
	// a Monte-Carlo evaluation.
	MCUtility

	numHistograms
)

// NumHistograms is the size of the histogram enumeration.
const NumHistograms = int(numHistograms)

var histogramNames = [numHistograms]string{
	DispatchGuardDepth: "ftsched_dispatch_guard_search_depth",
	DispatchHardSlack:  "ftsched_dispatch_hard_slack",
	DispatchSwitchNode: "ftsched_dispatch_switch_node",
	MCUtility:          "ftsched_montecarlo_utility",
}

var histogramHelp = [numHistograms]string{
	DispatchGuardDepth: "Binary-search depth per guard lookup in the compiled dispatch table.",
	DispatchHardSlack:  "Hard-deadline slack (deadline - completion) per completed hard process; violations fall in the <=0 bucket.",
	DispatchSwitchNode: "Target NodeID per schedule switch taken.",
	MCUtility:          "Per-scenario total utility (rounded) observed by Monte-Carlo evaluation.",
}

// Name returns the stable metric name of the histogram ("" for an
// out-of-range value).
func (h Histogram) Name() string {
	if h < 0 || h >= numHistograms {
		return ""
	}
	return histogramNames[h]
}

// Sink receives instrumentation events. Implementations must be safe for
// concurrent use and must not allocate: these methods are called from the
// dispatcher's per-cycle hot path, which is asserted to run at zero
// allocations per cycle (see the hot-path rules in the package
// documentation).
type Sink interface {
	// Add increments counter c by delta.
	Add(c Counter, delta int64)
	// Observe records one sample v in histogram h.
	Observe(h Histogram, v int64)
	// ObserveN records n identical samples v in histogram h — the batched
	// form emitters use to flush per-cycle scratch with one call per
	// distinct value.
	ObserveN(h Histogram, v int64, n int64)
}

// NopSink discards every event. Instrumented code treats it exactly like a
// nil sink: a single never-taken branch per cycle, so disabled
// observability is free.
type NopSink struct{}

// Add implements Sink.
func (NopSink) Add(Counter, int64) {}

// Observe implements Sink.
func (NopSink) Observe(Histogram, int64) {}

// ObserveN implements Sink.
func (NopSink) ObserveN(Histogram, int64, int64) {}

// Live reports whether s is a sink worth emitting to: non-nil and not a
// NopSink. Instrumented subsystems normalise through Live once at setup so
// their hot paths test a single pointer.
func Live(s Sink) bool {
	if s == nil {
		return false
	}
	_, nop := s.(NopSink)
	return !nop
}
