// Package obs is the zero-cost observability layer of the scheduler: a
// pluggable event sink threaded through tree synthesis (internal/core),
// online dispatch (internal/runtime) and Monte-Carlo evaluation
// (internal/sim), plus the export machinery that turns collected events
// into a Prometheus-text / expvar / pprof HTTP endpoint for the
// long-running CLIs.
//
// # Event taxonomy
//
// Every event the instrumented subsystems can emit is enumerated up front
// as either a Counter (a monotonically increasing count: cycles run,
// schedule switches taken, memo hits, candidate schedules rejected, ...)
// or a Histogram (a distribution over an integer magnitude: guard
// binary-search depth, hard-deadline slack, per-scenario utility, ...).
// The closed enumeration is deliberate: emitters pay an array index, not a
// name lookup, and the export side can render every metric — including
// never-incremented ones — without coordination.
//
// # Sink contract
//
// A Sink receives events. Implementations must be safe for concurrent use
// and must not allocate in Add/Observe/ObserveN — those calls sit on the
// dispatcher's per-cycle hot path, which is asserted to run at 0
// allocations per cycle. NopSink discards everything; instrumented code
// treats "no sink" (nil or NopSink) as a single branch, so disabled
// instrumentation compiles down to a predictable-not-taken nil check.
//
// Metrics is the standard live implementation: fixed arrays of atomic
// counters and fixed-bucket (power-of-two) histograms. It allocates only
// at construction and on Snapshot, never on the event path.
//
// # Hot-path rules
//
// Instrumented subsystems follow three rules, in priority order:
//
//  1. The uninstrumented path stays untouched: a nil sink must cost at
//     most a branch per cycle, and 0 allocs/cycle is asserted by test.
//  2. Per-event work is O(1) and allocation-free: array index + atomic
//     add. Per-entry events inside a cycle (guard-search depths) are
//     batched in pooled scratch and flushed once per cycle with ObserveN.
//  3. Instrumentation never changes results: sinks observe, they do not
//     steer. Trees, schedules and statistics are bit-identical with and
//     without a live sink.
//
// # Export
//
// Handler serves the collected metrics in Prometheus text exposition
// format at /metrics, as expvar JSON at /debug/vars (the Metrics instance
// is published as the expvar variable "ftsched"), and mounts
// net/http/pprof at /debug/pprof/. Serve starts a background HTTP server
// for a CLI (ftsim -metrics-addr, ftexperiments -metrics-addr) and
// returns the bound address, so ":0" works in tests.
package obs
