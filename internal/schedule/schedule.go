package schedule

import (
	"fmt"
	"sort"
	"strings"

	"ftsched/internal/model"
	"ftsched/internal/utility"
)

// Time re-exports the model time base for convenience.
type Time = model.Time

// Entry is one scheduled process together with its recovery budget.
type Entry struct {
	// Proc is the scheduled process.
	Proc model.ProcessID
	// Recoveries is f_i, the number of re-executions covered by the
	// schedule's recovery slack for this process. Between 0 and k.
	Recoveries int
}

// FSchedule is a fault-tolerant static schedule: an execution order plus
// recovery budgets. Processes of the application that do not appear in
// Entries are dropped.
type FSchedule struct {
	// Entries is the execution order on the computation node.
	Entries []Entry
}

// Clone returns a deep copy of the schedule.
func (s *FSchedule) Clone() *FSchedule {
	cp := &FSchedule{Entries: make([]Entry, len(s.Entries))}
	copy(cp.Entries, s.Entries)
	return cp
}

// IndexOf returns the position of the process in the schedule, or -1 if the
// process is dropped.
func (s *FSchedule) IndexOf(p model.ProcessID) int {
	for i, e := range s.Entries {
		if e.Proc == p {
			return i
		}
	}
	return -1
}

// Contains reports whether the process is scheduled (not dropped).
func (s *FSchedule) Contains(p model.ProcessID) bool { return s.IndexOf(p) >= 0 }

// Dropped returns the processes of the application that the schedule drops,
// in ID order.
func (s *FSchedule) Dropped(app *model.Application) []model.ProcessID {
	in := make([]bool, app.N())
	for _, e := range s.Entries {
		in[e.Proc] = true
	}
	var out []model.ProcessID
	for id := 0; id < app.N(); id++ {
		if !in[id] {
			out = append(out, model.ProcessID(id))
		}
	}
	return out
}

// Order returns the bare process order of the schedule.
func (s *FSchedule) Order() []model.ProcessID {
	out := make([]model.ProcessID, len(s.Entries))
	for i, e := range s.Entries {
		out[i] = e.Proc
	}
	return out
}

// String renders the schedule like "P1(f=2) P2 P3(f=1)".
func (s *FSchedule) String() string {
	var sb strings.Builder
	for i, e := range s.Entries {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "#%d", e.Proc)
		if e.Recoveries > 0 {
			fmt.Fprintf(&sb, "(f=%d)", e.Recoveries)
		}
	}
	return sb.String()
}

// Format renders the schedule with process names from the application.
func (s *FSchedule) Format(app *model.Application) string {
	var sb strings.Builder
	for i, e := range s.Entries {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(app.Proc(e.Proc).Name)
		if e.Recoveries > 0 {
			fmt.Fprintf(&sb, "(f=%d)", e.Recoveries)
		}
	}
	if d := s.Dropped(app); len(d) > 0 {
		sb.WriteString(" | dropped:")
		for _, id := range d {
			sb.WriteByte(' ')
			sb.WriteString(app.Proc(id).Name)
		}
	}
	return sb.String()
}

// Validate checks the structural invariants of the schedule against the
// application:
//
//   - every entry's process exists and appears at most once
//   - every hard process is scheduled, with Recoveries == k
//   - soft recoveries are within [0, k]
//   - the order respects precedence among scheduled processes (a dropped
//     predecessor is allowed: the successor consumes a stale value)
func Validate(app *model.Application, s *FSchedule) error {
	pos := make(map[model.ProcessID]int, len(s.Entries))
	for i, e := range s.Entries {
		if e.Proc < 0 || int(e.Proc) >= app.N() {
			return fmt.Errorf("schedule: entry %d: process id %d out of range", i, e.Proc)
		}
		if j, dup := pos[e.Proc]; dup {
			return fmt.Errorf("schedule: process %s scheduled twice (entries %d and %d)",
				app.Proc(e.Proc).Name, j, i)
		}
		pos[e.Proc] = i
		if e.Recoveries < 0 || e.Recoveries > app.K() {
			return fmt.Errorf("schedule: %s: recoveries %d outside [0,%d]",
				app.Proc(e.Proc).Name, e.Recoveries, app.K())
		}
	}
	for _, h := range app.HardIDs() {
		i, ok := pos[h]
		if !ok {
			return fmt.Errorf("schedule: hard process %s is dropped", app.Proc(h).Name)
		}
		if s.Entries[i].Recoveries != app.K() {
			return fmt.Errorf("schedule: hard process %s has %d recoveries, need k=%d",
				app.Proc(h).Name, s.Entries[i].Recoveries, app.K())
		}
	}
	for _, e := range s.Entries {
		for _, p := range app.Preds(e.Proc) {
			if j, ok := pos[p]; ok && j > pos[e.Proc] {
				return fmt.Errorf("schedule: %s scheduled before its predecessor %s",
					app.Proc(e.Proc).Name, app.Proc(p).Name)
			}
		}
	}
	return nil
}

// recoveryItem is one candidate consumer of the shared slack.
type recoveryItem struct {
	cost Time // wcet + µ of one re-execution
	max  int  // f_i
}

// worstRecoveryCost returns the maximum total re-execution time for at most
// k faults distributed over the items, each item taking at most item.max
// faults. Greedy on descending cost is optimal because all faults are
// interchangeable.
func worstRecoveryCost(items []recoveryItem, k int) Time {
	sort.Slice(items, func(a, b int) bool { return items[a].cost > items[b].cost })
	var total Time
	for _, it := range items {
		if k <= 0 {
			break
		}
		n := it.max
		if n > k {
			n = k
		}
		total += Time(n) * it.cost
		k -= n
	}
	return total
}

// Completions holds the timing analysis of an f-schedule.
type Completions struct {
	// Start[i] is the no-fault start time of entry i under the chosen
	// execution-time assumption (WCET for worst case, AET for expected,
	// BCET for best case), honouring releases.
	Start []Time
	// Finish[i] is the corresponding no-fault completion time.
	Finish []Time
	// WorstCase[i] is the completion of entry i in the worst-case fault
	// scenario: no-fault WCET finish plus the shared-slack recovery cost
	// of the worst allocation of k faults over entries 0..i. Only
	// populated by WorstCaseCompletions.
	WorstCase []Time
}

type timeOf func(model.Process) Time

// sequential simulates the no-fault timeline of a list schedule. On the
// canonical single-core platform it is the paper's sequential model; on a
// mapped platform each entry starts at the max of its primary core's ready
// time, its release, and the finishes of its already-scheduled
// predecessors (cross-core precedence), and runs for its speed-scaled
// duration.
func sequential(app *model.Application, entries []Entry, start Time, f timeOf) ([]Time, []Time) {
	starts := make([]Time, len(entries))
	finishes := make([]Time, len(entries))
	plat := app.Platform()
	// Fault-free attempts pay the recovery model's per-attempt cost:
	// checkpointing inflates every execution by its checkpoint overheads
	// (identity for re-execution and restart, so the canonical timing is
	// byte-identical). Applied after speed scaling — checkpoint geometry
	// lives in wall time on the executing core.
	rec := app.Recovery()
	if plat.IsDefault() {
		// Exact pre-platform fast path: one core at speed 1. Precedence
		// needs no explicit check — predecessors appear earlier in the
		// list and finishes are monotone.
		now := start
		for i, e := range entries {
			p := app.Proc(e.Proc)
			s := now
			if p.Release > s {
				s = p.Release
			}
			starts[i] = s
			now = s + rec.AttemptTime(f(p))
			finishes[i] = now
		}
		return starts, finishes
	}
	ready := make([]Time, plat.NCores())
	for c := range ready {
		ready[c] = start
	}
	done := make([]Time, app.N())
	seen := make([]bool, app.N())
	for i, e := range entries {
		p := app.Proc(e.Proc)
		pc := app.CoreOf(e.Proc)
		s := ready[pc]
		if p.Release > s {
			s = p.Release
		}
		for _, q := range app.Preds(e.Proc) {
			if seen[q] && done[q] > s {
				s = done[q]
			}
		}
		starts[i] = s
		fin := s + rec.AttemptTime(plat.Scale(pc, f(p)))
		ready[pc] = fin
		done[e.Proc] = fin
		seen[e.Proc] = true
		finishes[i] = fin
	}
	return starts, finishes
}

// WorstCaseCompletions computes the WCET-based no-fault timing and the
// shared-slack worst-case completion of every entry, for a schedule whose
// first entry starts no earlier than start and with at most k faults still
// to come. Entries with Recoveries == 0 do not consume slack.
//
// When releases introduce idle gaps, a recovery can partly overlap a gap;
// this analysis charges the full recovery cost anyway, which is safe
// (pessimistic) for deadline guarantees.
//
// On a mapped platform the anchor for entry i is the no-fault makespan of
// the prefix 0..i (the running maximum of finishes), not entry i's own
// finish: a recovery consumed by an earlier entry can execute on another
// core and push work there past entry i's finish. Every timeline point of
// the prefix under at most k faults is bounded by that makespan plus the
// total consumed recovery cost (each recovery adds at most µ plus its
// re-execution time, scaled on its recovery core, to one core's timeline,
// and all waiting serialises behind it). On a single core finishes are
// monotone, so the running maximum IS finishes[i] and the formula reduces
// exactly to the paper's shared-slack bound.
func WorstCaseCompletions(app *model.Application, entries []Entry, start Time, k int) Completions {
	starts, finishes := sequential(app, entries, start, func(p model.Process) Time { return p.WCET })
	wc := make([]Time, len(entries))
	items := make([]recoveryItem, 0, len(entries))
	var makespan Time
	for i, e := range entries {
		if e.Recoveries > 0 {
			// Per-fault worst-case cost under the application's recovery
			// model: WCET+µ re-execution, WCET+latency restart, or one
			// checkpoint segment plus the rollback cost. The bound
			// dominates the simulated cost for every duration ≤ WCET.
			items = append(items, recoveryItem{cost: app.WorstRecoveryCost(e.Proc), max: e.Recoveries})
		}
		if finishes[i] > makespan {
			makespan = finishes[i]
		}
		// worstRecoveryCost sorts in place; pass a copy of the prefix.
		pref := make([]recoveryItem, len(items))
		copy(pref, items)
		wc[i] = makespan + worstRecoveryCost(pref, k)
	}
	return Completions{Start: starts, Finish: finishes, WorstCase: wc}
}

// ExpectedCompletions computes AET-based no-fault start/finish times.
func ExpectedCompletions(app *model.Application, entries []Entry, start Time) Completions {
	s, f := sequential(app, entries, start, func(p model.Process) Time { return p.AET })
	return Completions{Start: s, Finish: f}
}

// BestCaseCompletions computes BCET-based no-fault start/finish times.
func BestCaseCompletions(app *model.Application, entries []Entry, start Time) Completions {
	s, f := sequential(app, entries, start, func(p model.Process) Time { return p.BCET })
	return Completions{Start: s, Finish: f}
}

// UnschedulableError reports which constraint a schedule violates in the
// worst-case fault scenario.
type UnschedulableError struct {
	// Proc is the hard process whose deadline is missed, or
	// model.NoProcess when the period is exceeded.
	Proc model.ProcessID
	// Completion is the offending worst-case completion time.
	Completion Time
	// Bound is the violated deadline (or the period).
	Bound Time
}

// Error implements error.
func (e *UnschedulableError) Error() string {
	if e.Proc == model.NoProcess {
		return fmt.Sprintf("schedule: worst-case makespan %d exceeds period %d", e.Completion, e.Bound)
	}
	return fmt.Sprintf("schedule: process #%d misses deadline %d (worst-case completion %d)",
		e.Proc, e.Bound, e.Completion)
}

// CheckSchedulable verifies that, starting at start with up to k faults
// still to occur, every scheduled hard process meets its deadline and the
// whole schedule completes within the application period, in the worst-case
// fault scenario. It does NOT check that all hard processes are present;
// use Validate for structural checks.
func CheckSchedulable(app *model.Application, entries []Entry, start Time, k int) error {
	c := WorstCaseCompletions(app, entries, start, k)
	for i, e := range entries {
		p := app.Proc(e.Proc)
		if p.Kind == model.Hard && c.WorstCase[i] > p.Deadline {
			return &UnschedulableError{Proc: e.Proc, Completion: c.WorstCase[i], Bound: p.Deadline}
		}
	}
	if n := len(entries); n > 0 && c.WorstCase[n-1] > app.Period() {
		return &UnschedulableError{Proc: model.NoProcess, Completion: c.WorstCase[n-1], Bound: app.Period()}
	}
	return nil
}

// Schedulable is CheckSchedulable as a predicate.
func Schedulable(app *model.Application, entries []Entry, start Time, k int) bool {
	return CheckSchedulable(app, entries, start, k) == nil
}

// ProjectedUtility evaluates the total expected utility of an f-schedule in
// the no-fault scenario (paper §4: the no-fault utility must never be
// compromised, so schedules are optimised for the average execution times).
//
// The first len(fixed) entries are taken to have completed at the given
// absolute times; the remaining entries are projected sequentially with
// their AETs starting at now (which must be >= the last fixed completion).
// Soft processes outside the schedule are dropped: they contribute nothing
// and degrade their successors through the stale-value coefficients.
func ProjectedUtility(app *model.Application, s *FSchedule, fixed []Time, now Time) float64 {
	if len(fixed) > len(s.Entries) {
		panic("schedule: more fixed completions than entries")
	}
	status := make([]utility.StaleStatus, app.N())
	for i := range status {
		status[i] = utility.Dropped
	}
	for _, e := range s.Entries {
		status[e.Proc] = utility.Executed
	}
	alpha, err := app.StaleCoefficients(status)
	if err != nil {
		// Impossible for a validated application; schedule validity is a
		// programmer-error precondition.
		panic(err)
	}
	var total float64
	for i := 0; i < len(fixed); i++ {
		e := s.Entries[i]
		if app.Proc(e.Proc).Kind == model.Soft {
			total += alpha[e.Proc] * app.UtilityOf(e.Proc).Value(fixed[i])
		}
	}
	rest := s.Entries[len(fixed):]
	c := ExpectedCompletions(app, rest, now)
	for i, e := range rest {
		if app.Proc(e.Proc).Kind == model.Soft {
			total += alpha[e.Proc] * app.UtilityOf(e.Proc).Value(c.Finish[i])
		}
	}
	return total
}

// ExpectedUtility is ProjectedUtility with no fixed prefix, starting at 0:
// the figure of merit the paper reports for the no-fault scenario.
func ExpectedUtility(app *model.Application, s *FSchedule) float64 {
	return ProjectedUtility(app, s, nil, 0)
}
