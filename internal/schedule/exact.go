package schedule

import (
	"ftsched/internal/model"
)

// This file provides an exact worst-case completion analysis for schedules
// whose processes carry release times (hyper-period instances). The greedy
// shared-slack analysis in WorstCaseCompletions charges every re-execution
// as a full delay of everything downstream; when releases introduce idle
// gaps, part of a recovery can overlap a gap, so the greedy bound is safe
// but pessimistic. The dynamic program below maximises, for every entry
// and every number of consumed faults, the release-aware completion time —
// exact under the model's assumptions (faults are interchangeable, each
// re-execution of P_i costs wcet_i + µ_i, at most f_i re-executions of
// P_i).
//
// Complexity: O(n · k²), against O(n · k log n) for the greedy bound; for
// release-free schedules both coincide (verified by property test).

// WorstCaseCompletionsExact computes, for each entry, the maximum
// completion time over all allocations of at most k faults to the entries'
// recovery budgets, propagating starts through releases exactly.
func WorstCaseCompletionsExact(app *model.Application, entries []Entry, start Time, k int) Completions {
	n := len(entries)
	c := Completions{
		Start:     make([]Time, n),
		Finish:    make([]Time, n),
		WorstCase: make([]Time, n),
	}
	if n == 0 {
		return c
	}
	// No-fault WCET timing for Start/Finish (same as the greedy
	// analysis).
	s, f := sequential(app, entries, start, func(p model.Process) Time { return p.WCET })
	c.Start, c.Finish = s, f

	// wc[j] = worst completion time of the prefix when exactly <= j
	// faults hit it. Iterate entries, maximising over how many faults
	// hit the current entry.
	const neg = Time(-1)
	wc := make([]Time, k+1)
	next := make([]Time, k+1)
	for j := range wc {
		wc[j] = start
	}
	for i, e := range entries {
		p := app.Proc(e.Proc)
		mu := app.MuOf(e.Proc)
		for j := 0; j <= k; j++ {
			next[j] = neg
			maxHere := e.Recoveries
			if maxHere > j {
				maxHere = j
			}
			for m := 0; m <= maxHere; m++ {
				prev := wc[j-m]
				st := prev
				if p.Release > st {
					st = p.Release
				}
				end := st + p.WCET + Time(m)*(p.WCET+mu)
				if end > next[j] {
					next[j] = end
				}
			}
		}
		copy(wc, next)
		// Worst case over any fault count up to k; wc[] is monotone in
		// j by construction (m = 0 is always allowed), so wc[k] is the
		// maximum.
		c.WorstCase[i] = wc[k]
	}
	return c
}

// CheckSchedulableExact is CheckSchedulable using the exact release-aware
// analysis. Prefer it when the application was produced by model.Merge;
// for release-free schedules it agrees with CheckSchedulable.
func CheckSchedulableExact(app *model.Application, entries []Entry, start Time, k int) error {
	c := WorstCaseCompletionsExact(app, entries, start, k)
	for i, e := range entries {
		p := app.Proc(e.Proc)
		if p.Kind == model.Hard && c.WorstCase[i] > p.Deadline {
			return &UnschedulableError{Proc: e.Proc, Completion: c.WorstCase[i], Bound: p.Deadline}
		}
	}
	if n := len(entries); n > 0 && c.WorstCase[n-1] > app.Period() {
		return &UnschedulableError{Proc: model.NoProcess, Completion: c.WorstCase[n-1], Bound: app.Period()}
	}
	return nil
}
