package schedule

import (
	"testing"

	"ftsched/internal/model"
)

// TestCheckpointTwoFaultTiming pins the worst-case arithmetic of the
// checkpoint model on a hand-computed two-fault timeline, mirroring the
// paper's Fig. 3 re-execution calculation.
//
// P1: WCET 30, k = 2, checkpoint(spacing=10, overhead=2, rollback=3).
// The no-fault attempt takes 30 plus 2 checkpoints (at 10 and 20; none at
// completion) × 2 = 34. Each worst-case fault rolls back to the last
// checkpoint: 3 rollback + a full 10-unit final segment = 13.
// Worst case: 34 + 13 + 13 = 60.
func TestCheckpointTwoFaultTiming(t *testing.T) {
	mk := func(deadline model.Time) (*model.Application, model.ProcessID) {
		a := model.NewApplication("cp2f", 1000, 2, 5)
		p1 := a.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 30, AET: 30, WCET: 30, Deadline: deadline})
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		return a, p1
	}
	app, p1 := mk(60)
	app, err := app.WithRecovery(model.CheckpointModel(10, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{{Proc: p1, Recoveries: 2}}
	c := WorstCaseCompletions(app, entries, 0, 2)
	if c.Finish[0] != 34 {
		t.Errorf("no-fault finish = %d, want 30 + 2 checkpoints × 2", c.Finish[0])
	}
	if c.WorstCase[0] != 60 {
		t.Errorf("worst-case completion = %d, want 34 + 2 × (3+10)", c.WorstCase[0])
	}
	if err := CheckSchedulable(app, entries, 0, 2); err != nil {
		t.Errorf("should be schedulable exactly at the deadline: %v", err)
	}

	// One more unit of rollback cost and both faults miss by 2.
	tight, q1 := mk(60)
	tight, err = tight.WithRecovery(model.CheckpointModel(10, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSchedulable(tight, []Entry{{Proc: q1, Recoveries: 2}}, 0, 2); err == nil {
		t.Error("rollback 4 should miss the 60 deadline (worst case 62)")
	}

	// The restart model on the same timeline: no checkpoint overheads, but
	// each fault costs latency + a full re-run: 30 + 2 × (7+30) = 104.
	rs, r1 := mk(104)
	rs, err = rs.WithRecovery(model.RestartModel(7))
	if err != nil {
		t.Fatal(err)
	}
	c = WorstCaseCompletions(rs, []Entry{{Proc: r1, Recoveries: 2}}, 0, 2)
	if c.Finish[0] != 30 {
		t.Errorf("restart no-fault finish = %d, want 30", c.Finish[0])
	}
	if c.WorstCase[0] != 104 {
		t.Errorf("restart worst case = %d, want 30 + 2 × (7+30)", c.WorstCase[0])
	}
}
