package schedule

import (
	"strings"
	"testing"
)

func TestTimingReport(t *testing.T) {
	app, ids := fig1(t)
	s := &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[2], 0}}}
	out := TimingReport(app, s, 1)
	for _, want := range []string{
		"P1", "hard", "180", // deadline shown
		"P3", "soft",
		"dropped: P2",
		"worst-case makespan",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// P1's laxity: deadline 180 - WCC 150 = 30.
	if !strings.Contains(out, "30") {
		t.Errorf("laxity missing:\n%s", out)
	}
}

func TestTimingReportEmpty(t *testing.T) {
	app, _ := fig1(t)
	out := TimingReport(app, &FSchedule{}, 1)
	if !strings.Contains(out, "process") {
		t.Errorf("header missing:\n%s", out)
	}
	if strings.Contains(out, "makespan") {
		t.Error("empty schedule must not report a makespan")
	}
}
