package schedule

import (
	"testing"

	"ftsched/internal/model"
)

// twoCoreApp builds a three-process application on the lp/hp platform with
// an explicit mapping: A and C on the unit-speed low-power core, B on the
// 2x high-performance core, all re-executions on the HP core.
//
//	A: WCET 40   B: WCET 60 (→ 30 on hp)   C: WCET 50
//
// withEdge additionally adds the cross-core precedence A → B.
func twoCoreApp(t *testing.T, withEdge bool) (*model.Application, [3]model.ProcessID) {
	t.Helper()
	a := model.NewApplication("twocore", 1000, 1, 10)
	pa := a.AddProcess(model.Process{Name: "A", Kind: model.Hard, BCET: 40, AET: 40, WCET: 40, Deadline: 900})
	pb := a.AddProcess(model.Process{Name: "B", Kind: model.Hard, BCET: 60, AET: 60, WCET: 60, Deadline: 900})
	pc := a.AddProcess(model.Process{Name: "C", Kind: model.Hard, BCET: 50, AET: 50, WCET: 50, Deadline: 900})
	if withEdge {
		a.MustAddEdge(pa, pb)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	plat := model.MustNewPlatform(
		model.Core{Name: "lp", Speed: 1, PowerActive: 1, PowerIdle: 0.05},
		model.Core{Name: "hp", Speed: 2, PowerActive: 3, PowerIdle: 0.15},
	)
	mapped, err := a.WithPlatform(plat, model.Mapping{
		Primary:  []model.CoreID{0, 1, 0},
		Recovery: []model.CoreID{1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return mapped, [3]model.ProcessID{pa, pb, pc}
}

// TestTwoCoreTimeline: hand-computed no-fault timeline with A and B in
// parallel on different cores. B's finish (30) precedes A's (40), so the
// single-core monotone-finish assumption does not hold — the analysis must
// anchor on the prefix makespan.
func TestTwoCoreTimeline(t *testing.T) {
	app, p := twoCoreApp(t, false)
	entries := []Entry{{Proc: p[0], Recoveries: 1}, {Proc: p[1], Recoveries: 1}, {Proc: p[2], Recoveries: 1}}
	c := WorstCaseCompletions(app, entries, 0, 1)

	// A on lp: [0, 40]. B on hp: [0, 30] (60 scaled by speed 2).
	// C on lp behind A: [40, 90].
	wantStart := []Time{0, 0, 40}
	wantFinish := []Time{40, 30, 90}
	for i := range entries {
		if c.Start[i] != wantStart[i] || c.Finish[i] != wantFinish[i] {
			t.Errorf("entry %d: start/finish = %d/%d, want %d/%d",
				i, c.Start[i], c.Finish[i], wantStart[i], wantFinish[i])
		}
	}

	// Recovery items (all on hp): A = 40/2 + µ = 30, B = 60/2 + µ = 40,
	// C = 50/2 + µ = 35. One fault, anchored on the prefix makespan:
	//   wc[0] = 40 + 30            = 70
	//   wc[1] = max(40,30) + max(30,40)     = 80
	//   wc[2] = 90 + max(30,40,35) = 130
	wantWC := []Time{70, 80, 130}
	for i := range entries {
		if c.WorstCase[i] != wantWC[i] {
			t.Errorf("entry %d: worst case = %d, want %d", i, c.WorstCase[i], wantWC[i])
		}
	}
}

// TestTwoCoreCrossCorePrecedence: with A → B the HP core waits for A's
// cross-core finish, and the worst case rides the recovery on the HP core.
func TestTwoCoreCrossCorePrecedence(t *testing.T) {
	app, p := twoCoreApp(t, true)
	entries := []Entry{{Proc: p[0], Recoveries: 1}, {Proc: p[1], Recoveries: 1}, {Proc: p[2], Recoveries: 1}}
	c := WorstCaseCompletions(app, entries, 0, 1)

	// A on lp: [0, 40]. B on hp waits for A: [40, 70]. C on lp: [40, 90].
	wantStart := []Time{0, 40, 40}
	wantFinish := []Time{40, 70, 90}
	for i := range entries {
		if c.Start[i] != wantStart[i] || c.Finish[i] != wantFinish[i] {
			t.Errorf("entry %d: start/finish = %d/%d, want %d/%d",
				i, c.Start[i], c.Finish[i], wantStart[i], wantFinish[i])
		}
	}
	// wc[0] = 40 + 30; wc[1] = 70 + max(30,40); wc[2] = 90 + max(30,40,35).
	wantWC := []Time{70, 110, 130}
	for i := range entries {
		if c.WorstCase[i] != wantWC[i] {
			t.Errorf("entry %d: worst case = %d, want %d", i, c.WorstCase[i], wantWC[i])
		}
	}
	if err := CheckSchedulable(app, entries, 0, 1); err != nil {
		t.Errorf("hand-verified schedule rejected: %v", err)
	}
}

// TestTwoCoreRelease: a release beyond the core-ready time defers the
// mapped start exactly as on the single core.
func TestTwoCoreRelease(t *testing.T) {
	a := model.NewApplication("rel2", 1000, 0, 10)
	pa := a.AddProcess(model.Process{Name: "A", Kind: model.Hard, BCET: 40, AET: 40, WCET: 40, Deadline: 900})
	pc := a.AddProcess(model.Process{Name: "C", Kind: model.Hard, BCET: 50, AET: 50, WCET: 50, Deadline: 900, Release: 100})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	plat := model.MustNewPlatform(
		model.Core{Name: "lp", Speed: 1, PowerActive: 1, PowerIdle: 0},
		model.Core{Name: "hp", Speed: 2, PowerActive: 3, PowerIdle: 0},
	)
	app, err := a.WithPlatform(plat, model.Mapping{
		Primary:  []model.CoreID{0, 0},
		Recovery: []model.CoreID{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{{Proc: pa}, {Proc: pc}}
	c := WorstCaseCompletions(app, entries, 0, 0)
	if c.Start[1] != 100 || c.Finish[1] != 150 {
		t.Errorf("released entry start/finish = %d/%d, want 100/150", c.Start[1], c.Finish[1])
	}
}

// TestMappedMatchesSingleCoreOnDefaultPlatform: the unified prefix-makespan
// analysis must reduce exactly to the pre-platform formula when the
// application has no explicit platform — cross-checked on the paper's
// Fig. 1 schedule.
func TestMappedMatchesSingleCoreOnDefaultPlatform(t *testing.T) {
	app, p := fig1(t)
	entries := []Entry{{Proc: p[0], Recoveries: 1}, {Proc: p[2]}, {Proc: p[1], Recoveries: 1}}
	c := WorstCaseCompletions(app, entries, 0, 1)
	// P1: [0,70]; P3: [70,150]; P2: [150,220]. Recovery items P1 = 80,
	// P2 = 80; one fault: wc = finish + 80 everywhere.
	wantWC := []Time{150, 230, 300}
	for i := range entries {
		if c.WorstCase[i] != wantWC[i] {
			t.Errorf("entry %d: worst case = %d, want %d", i, c.WorstCase[i], wantWC[i])
		}
	}
}
