package schedule

import (
	"fmt"
	"strings"

	"ftsched/internal/model"
)

// TimingReport renders a per-entry timing table for an f-schedule: the
// no-fault WCET window, the worst-case completion under k faults, and for
// hard processes the deadline and remaining laxity. It is the inspection
// view `cmd/ftsched` prints for static schedules.
func TimingReport(app *model.Application, s *FSchedule, k int) string {
	c := WorstCaseCompletions(app, s.Entries, 0, k)
	e := ExpectedCompletions(app, s.Entries, 0)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-5s %5s %7s %7s %7s %8s %8s %7s\n",
		"process", "kind", "f", "start", "finish", "avg", "wc(k)", "deadline", "laxity")
	for i, en := range s.Entries {
		p := app.Proc(en.Proc)
		kind := "soft"
		deadline, laxity := "-", "-"
		if p.Kind == model.Hard {
			kind = "hard"
			deadline = fmt.Sprint(p.Deadline)
			laxity = fmt.Sprint(p.Deadline - c.WorstCase[i])
		}
		fmt.Fprintf(&sb, "%-16s %-5s %5d %7d %7d %7d %8d %8s %7s\n",
			p.Name, kind, en.Recoveries, c.Start[i], c.Finish[i], e.Finish[i],
			c.WorstCase[i], deadline, laxity)
	}
	if n := len(s.Entries); n > 0 {
		fmt.Fprintf(&sb, "worst-case makespan %d of period %d (slack %d)\n",
			c.WorstCase[n-1], app.Period(), app.Period()-c.WorstCase[n-1])
	}
	if d := s.Dropped(app); len(d) > 0 {
		sb.WriteString("dropped:")
		for _, id := range d {
			sb.WriteByte(' ')
			sb.WriteString(app.Proc(id).Name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
