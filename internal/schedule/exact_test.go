package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/model"
)

// TestExactMatchesGreedyWithoutReleases: for release-free schedules both
// analyses must agree exactly, on random instances.
func TestExactMatchesGreedyWithoutReleases(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		k := rng.Intn(4)
		app := model.NewApplication("r", 1_000_000, k, 1+Time(rng.Intn(20)))
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			w := 1 + Time(rng.Intn(100))
			id := app.AddProcess(model.Process{
				Name: string(rune('A' + i)), Kind: model.Soft,
				BCET: w / 2, AET: w / 2, WCET: w,
				Utility: step(1, 10),
			})
			entries[i] = Entry{Proc: id, Recoveries: rng.Intn(k + 1)}
		}
		if err := app.Validate(); err != nil {
			return false
		}
		g := WorstCaseCompletions(app, entries, 0, k)
		e := WorstCaseCompletionsExact(app, entries, 0, k)
		for i := range entries {
			if g.WorstCase[i] != e.WorstCase[i] {
				t.Logf("seed %d entry %d: greedy %d != exact %d", seed, i, g.WorstCase[i], e.WorstCase[i])
				return false
			}
			if g.Start[i] != e.Start[i] || g.Finish[i] != e.Finish[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestExactTighterWithReleases: recoveries that fit into a release gap do
// not delay later entries in the exact analysis, while the greedy bound
// charges them fully.
func TestExactTighterWithReleases(t *testing.T) {
	a := model.NewApplication("rel", 1000, 1, 10)
	// A runs 0..50 worst case; one re-execution would end at 110.
	pa := a.AddProcess(model.Process{Name: "A", Kind: model.Hard, BCET: 10, AET: 30, WCET: 50, Deadline: 200})
	// B is released at 150: A's recovery (ending 110) hides entirely in
	// the gap.
	pb := a.AddProcess(model.Process{Name: "B", Kind: model.Hard, BCET: 10, AET: 15, WCET: 20, Deadline: 300, Release: 150})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	entries := []Entry{{pa, 1}, {pb, 1}}
	g := WorstCaseCompletions(a, entries, 0, 1)
	e := WorstCaseCompletionsExact(a, entries, 0, 1)
	// Greedy: finish(B) = 170 no-fault, + max recovery (60) = 230.
	if g.WorstCase[1] != 230 {
		t.Errorf("greedy WCC(B) = %d, want 230", g.WorstCase[1])
	}
	// Exact: worst is the fault on B itself: start 150, 20 + 30 = 200;
	// a fault on A ends at 110 < release and costs B nothing.
	if e.WorstCase[1] != 200 {
		t.Errorf("exact WCC(B) = %d, want 200", e.WorstCase[1])
	}
	// A's own worst case is identical in both.
	if g.WorstCase[0] != 110 || e.WorstCase[0] != 110 {
		t.Errorf("WCC(A) = %d/%d, want 110/110", g.WorstCase[0], e.WorstCase[0])
	}
}

// TestExactNeverExceedsGreedy: the exact bound is never above the safe
// greedy bound, with or without releases.
func TestExactNeverExceedsGreedy(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		k := rng.Intn(4)
		app := model.NewApplication("r", 1_000_000, k, 1+Time(rng.Intn(20)))
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			w := 1 + Time(rng.Intn(100))
			id := app.AddProcess(model.Process{
				Name: string(rune('A' + i)), Kind: model.Soft,
				BCET: w / 2, AET: w / 2, WCET: w,
				Utility: step(1, 10),
				Release: Time(rng.Intn(400)),
			})
			entries[i] = Entry{Proc: id, Recoveries: rng.Intn(k + 1)}
		}
		if err := app.Validate(); err != nil {
			return false
		}
		g := WorstCaseCompletions(app, entries, 0, k)
		e := WorstCaseCompletionsExact(app, entries, 0, k)
		for i := range entries {
			if e.WorstCase[i] > g.WorstCase[i] {
				t.Logf("seed %d: exact %d exceeds greedy %d at %d", seed, e.WorstCase[i], g.WorstCase[i], i)
				return false
			}
			if e.WorstCase[i] < e.Finish[i] {
				t.Logf("seed %d: exact below no-fault finish at %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestExactBruteForceWithReleases cross-checks the DP against exhaustive
// fault-allocation enumeration on small release-bearing instances.
func TestExactBruteForceWithReleases(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		k := rng.Intn(3)
		app := model.NewApplication("r", 1_000_000, k, 1+Time(rng.Intn(15)))
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			w := 1 + Time(rng.Intn(60))
			id := app.AddProcess(model.Process{
				Name: string(rune('A' + i)), Kind: model.Soft,
				BCET: w, AET: w, WCET: w,
				Utility: step(1, 10),
				Release: Time(rng.Intn(200)),
			})
			entries[i] = Entry{Proc: id, Recoveries: rng.Intn(k + 1)}
		}
		if err := app.Validate(); err != nil {
			return false
		}
		// Brute force: enumerate all fault allocations, propagate.
		var best Time
		var rec func(i int, left int, now Time)
		rec = func(i, left int, now Time) {
			if i == n {
				if now > best {
					best = now
				}
				return
			}
			e := entries[i]
			p := app.Proc(e.Proc)
			maxM := e.Recoveries
			if maxM > left {
				maxM = left
			}
			for m := 0; m <= maxM; m++ {
				st := now
				if p.Release > st {
					st = p.Release
				}
				end := st + p.WCET + Time(m)*(p.WCET+app.MuOf(e.Proc))
				rec(i+1, left-m, end)
			}
		}
		rec(0, k, 0)
		e := WorstCaseCompletionsExact(app, entries, 0, k)
		if e.WorstCase[n-1] != best {
			t.Logf("seed %d: DP %d != brute %d", seed, e.WorstCase[n-1], best)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCheckSchedulableExact(t *testing.T) {
	a := model.NewApplication("rel", 220, 1, 10)
	pa := a.AddProcess(model.Process{Name: "A", Kind: model.Hard, BCET: 10, AET: 30, WCET: 50, Deadline: 110})
	pb := a.AddProcess(model.Process{Name: "B", Kind: model.Hard, BCET: 10, AET: 15, WCET: 20, Deadline: 220, Release: 150})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	entries := []Entry{{pa, 1}, {pb, 1}}
	// Greedy rejects (WCC(B) = 230 > 220); exact accepts (200 <= 220).
	if err := CheckSchedulable(a, entries, 0, 1); err == nil {
		t.Error("greedy should reject this schedule")
	}
	if err := CheckSchedulableExact(a, entries, 0, 1); err != nil {
		t.Errorf("exact should accept: %v", err)
	}
	// Violation reporting still works.
	tight := model.NewApplication("t", 100, 1, 10)
	h := tight.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 10, AET: 30, WCET: 50, Deadline: 100})
	if err := tight.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CheckSchedulableExact(tight, []Entry{{h, 1}}, 0, 1); err == nil {
		t.Error("exact must reject a genuine violation")
	}
	// Period violation.
	tight2 := model.NewApplication("t2", 100, 0, 10)
	h2 := tight2.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 10, AET: 30, WCET: 50, Deadline: 300, Release: 80})
	_ = tight2.Validate()
	if err := CheckSchedulableExact(tight2, []Entry{{h2, 0}}, 0, 0); err == nil {
		t.Error("exact must reject a period violation")
	}
}
