// Package schedule implements fault-tolerant static schedules
// ("f-schedules") with shared recovery slack, as introduced in §3 of
// Izosimov et al. (DATE 2008) and inherited from their DATE 2005 paper [7].
//
// An f-schedule is an ordering of (a subset of) the application's processes
// on the single computation node. Execution is non-preemptive, so the
// ordering plus per-process recovery counts describe the schedule
// completely: each process starts when its predecessor entry finishes, and
// completion times are prefix sums over the ordering. Each scheduled
// process P_i carries a recovery count f_i: the number of re-executions the
// schedule's recovery slack can accommodate for P_i. Hard processes always
// carry f_i = k; soft processes carry whatever number of re-executions
// proved both schedulable and beneficial. Soft processes that are not
// scheduled at all are dropped: they produce no utility (α = 0) and their
// successors consume stale values (see package utility).
//
// The ordering must respect the application's polar DAG: a process may only
// appear after all of its scheduled predecessors, and FSchedule.Validate
// rejects anything else.
//
// The recovery slack is shared: the schedule does not reserve
// (wcet_i + µ)·f_i after every process, but only enough slack so that the
// worst allocation of the k transient faults among the scheduled prefix is
// covered. Consequently the worst-case completion of the i-th entry is
//
//	WCC(i) = Σ_{j ≤ i} wcet_j  +  max { Σ_j n_j·(wcet_j + µ_j) :
//	                                    0 ≤ n_j ≤ f_j, Σ_j n_j ≤ k }
//
// which this package evaluates greedily (faults go to the largest
// wcet_j + µ_j first).
package schedule
