package schedule

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/model"
	"ftsched/internal/utility"
)

func step(v float64, until Time) utility.Function {
	return utility.MustStep([]Time{until}, []float64{v})
}

// fig1 builds the paper's Fig. 1 application with Fig. 4a-style utilities:
// U2 = 40 up to 90 ms then 20 up to 200 ms then 10 up to 250 ms;
// U3 = 40 up to 110 ms then 30 up to 150 ms then 10 up to 220 ms.
// These staircases reproduce every utility value quoted in the Fig. 4
// discussion (see the tests below).
func fig1(t *testing.T) (*model.Application, [3]model.ProcessID) {
	t.Helper()
	a := model.NewApplication("fig1", 300, 1, 10)
	p1 := a.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 30, AET: 50, WCET: 70, Deadline: 180})
	p2 := a.AddProcess(model.Process{Name: "P2", Kind: model.Soft, BCET: 30, AET: 50, WCET: 70,
		Utility: utility.MustStep([]model.Time{90, 200, 250}, []float64{40, 20, 10})})
	p3 := a.AddProcess(model.Process{Name: "P3", Kind: model.Soft, BCET: 40, AET: 60, WCET: 80,
		Utility: utility.MustStep([]model.Time{110, 150, 220}, []float64{40, 30, 10})})
	a.MustAddEdge(p1, p2)
	a.MustAddEdge(p1, p3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a, [3]model.ProcessID{p1, p2, p3}
}

func TestFig3ReExecutionTiming(t *testing.T) {
	// Paper Fig. 3: P1 with WCET 30 ms, k = 2, µ = 5 ms. Worst case:
	// 30 + (5+30) + (5+30) = 100 ms.
	a := model.NewApplication("fig3", 1000, 2, 5)
	p1 := a.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 30, AET: 30, WCET: 30, Deadline: 100})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	entries := []Entry{{Proc: p1, Recoveries: 2}}
	c := WorstCaseCompletions(a, entries, 0, 2)
	if c.WorstCase[0] != 100 {
		t.Errorf("worst-case completion = %d, want 100", c.WorstCase[0])
	}
	if c.Finish[0] != 30 {
		t.Errorf("no-fault finish = %d, want 30", c.Finish[0])
	}
	if err := CheckSchedulable(a, entries, 0, 2); err != nil {
		t.Errorf("should be schedulable exactly at the deadline: %v", err)
	}
	// One more millisecond of µ and it misses.
	b := model.NewApplication("fig3b", 1000, 2, 6)
	q1 := b.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 30, AET: 30, WCET: 30, Deadline: 100})
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	err := CheckSchedulable(b, []Entry{{Proc: q1, Recoveries: 2}}, 0, 2)
	var ue *UnschedulableError
	if !errors.As(err, &ue) {
		t.Fatalf("expected UnschedulableError, got %v", err)
	}
	if ue.Proc != q1 || ue.Completion != 102 {
		t.Errorf("violation = %+v, want P1 at 102", ue)
	}
}

func TestSharedSlackFig4(t *testing.T) {
	// Fig. 4b4/c: schedule P1 P3 P2, k = 1, µ = 10. With recoveries on
	// all three processes the worst-case makespan would be
	// 220 + (80+10) = 310 > T = 300, so P3 (or P2) must give up its
	// recovery: with f(P3) = 0 the makespan is 220 + 90 = 310 still via
	// P3? No: recovery candidates are then P1 (70+10) and P2 (70+10), so
	// 220 + 80 = 300 <= 300.
	a, ids := fig1(t)
	all := []Entry{{ids[0], 1}, {ids[2], 1}, {ids[1], 1}}
	c := WorstCaseCompletions(a, all, 0, 1)
	if got := c.WorstCase[2]; got != 310 {
		t.Errorf("makespan with all recoveries = %d, want 310", got)
	}
	if Schedulable(a, all, 0, 1) {
		t.Error("all-recoveries schedule must exceed the period")
	}
	noP3 := []Entry{{ids[0], 1}, {ids[2], 0}, {ids[1], 1}}
	c = WorstCaseCompletions(a, noP3, 0, 1)
	if got := c.WorstCase[2]; got != 300 {
		t.Errorf("makespan without P3 recovery = %d, want 300", got)
	}
	if !Schedulable(a, noP3, 0, 1) {
		t.Error("schedule without P3 recovery must fit the period")
	}
	// P1's worst-case completion: 70 + 80 = 150 <= 180.
	if got := c.WorstCase[0]; got != 150 {
		t.Errorf("WCC(P1) = %d, want 150", got)
	}
}

func TestExpectedUtilityFig4(t *testing.T) {
	// Fig. 4b1: S1 = P1,P2,P3 in the average case completes P2 at 100 and
	// P3 at 160: U = U2(100) + U3(160) = 20 + 10 = 30.
	// Fig. 4b2: S2 = P1,P3,P2 completes P3 at 110, P2 at 160:
	// U = U3(110) + U2(160) = 40 + 20 = 60.
	a, ids := fig1(t)
	s1 := &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[1], 0}, {ids[2], 0}}}
	s2 := &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[2], 0}, {ids[1], 0}}}
	if got := ExpectedUtility(a, s1); got != 30 {
		t.Errorf("U(S1) = %g, want 30", got)
	}
	if got := ExpectedUtility(a, s2); got != 60 {
		t.Errorf("U(S2) = %g, want 60", got)
	}
	// Fig. 4b5: if P1 finishes at its BCET 30, S1 yields
	// U2(80) + U3(140) = 40 + 30 = 70, beating S2's 60.
	if got := ProjectedUtility(a, s1, []Time{30}, 30); got != 70 {
		t.Errorf("U(S1 | P1 done at 30) = %g, want 70", got)
	}
	if got := ProjectedUtility(a, s2, []Time{30}, 30); got != 60 {
		t.Errorf("U(S2 | P1 done at 30) = %g, want 60", got)
	}
	// Fig. 4c3/c4: dropping P2 (S3 = P1,P3) gives U3(100)·α... P3 executed
	// with P1 its only predecessor: α3 = 1, completes at 50+60 = 110 in
	// the average case -> 40. The paper evaluates the worst case
	// completion 100 for U3 after the fault; here we check the dropped
	// counterpart produces the stale-degraded utilities.
	s3 := &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[2], 0}}}
	if got := ExpectedUtility(a, s3); got != 40 {
		t.Errorf("U(S3) = %g, want 40", got)
	}
	s4 := &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[1], 0}}}
	// P2 completes at 100 on average: U2(100) = 20.
	if got := ExpectedUtility(a, s4); got != 20 {
		t.Errorf("U(S4) = %g, want 20", got)
	}
}

func TestStaleDegradationInUtility(t *testing.T) {
	// Chain A(soft) -> B(soft). Drop A; B executes with a stale input:
	// αB = (1+0)/2 = 1/2, so B is worth half.
	a := model.NewApplication("stale", 1000, 0, 1)
	pa := a.AddProcess(model.Process{Name: "A", Kind: model.Soft, BCET: 10, AET: 10, WCET: 10, Utility: step(100, 500)})
	pb := a.AddProcess(model.Process{Name: "B", Kind: model.Soft, BCET: 10, AET: 10, WCET: 10, Utility: step(60, 500)})
	a.MustAddEdge(pa, pb)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &FSchedule{Entries: []Entry{{pb, 0}}}
	if got := ExpectedUtility(a, s); math.Abs(got-30) > 1e-12 {
		t.Errorf("U = %g, want 30 (stale-halved)", got)
	}
}

func TestReleaseHonoured(t *testing.T) {
	a := model.NewApplication("rel", 1000, 0, 1)
	pa := a.AddProcess(model.Process{Name: "A", Kind: model.Hard, BCET: 5, AET: 5, WCET: 5, Deadline: 100})
	pb := a.AddProcess(model.Process{Name: "B", Kind: model.Hard, BCET: 5, AET: 7, WCET: 10, Deadline: 300, Release: 200})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	entries := []Entry{{pa, 0}, {pb, 0}}
	c := ExpectedCompletions(a, entries, 0)
	if c.Start[1] != 200 || c.Finish[1] != 207 {
		t.Errorf("B start/finish = %d/%d, want 200/207", c.Start[1], c.Finish[1])
	}
	w := WorstCaseCompletions(a, entries, 0, 0)
	if w.Start[1] != 200 || w.WorstCase[1] != 210 {
		t.Errorf("B worst start/completion = %d/%d, want 200/210", w.Start[1], w.WorstCase[1])
	}
	b := BestCaseCompletions(a, entries, 0)
	if b.Finish[1] != 205 {
		t.Errorf("B best finish = %d, want 205", b.Finish[1])
	}
}

func TestValidateSchedule(t *testing.T) {
	a, ids := fig1(t)
	good := &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[1], 0}, {ids[2], 1}}}
	if err := Validate(a, good); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	cases := []struct {
		name string
		s    *FSchedule
	}{
		{"duplicate", &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[0], 1}}}},
		{"out of range", &FSchedule{Entries: []Entry{{model.ProcessID(9), 0}}}},
		{"hard dropped", &FSchedule{Entries: []Entry{{ids[1], 0}}}},
		{"hard without k recoveries", &FSchedule{Entries: []Entry{{ids[0], 0}}}},
		{"negative recoveries", &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[1], -1}}}},
		{"too many recoveries", &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[1], 5}}}},
		{"precedence violated", &FSchedule{Entries: []Entry{{ids[1], 0}, {ids[0], 1}}}},
	}
	for _, c := range cases {
		if err := Validate(a, c.s); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
	// Dropping the soft predecessor of a scheduled process is fine.
	dropPred := &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[2], 0}}}
	if err := Validate(a, dropPred); err != nil {
		t.Errorf("dropping a soft process should be allowed: %v", err)
	}
}

func TestCloneAndAccessors(t *testing.T) {
	a, ids := fig1(t)
	s := &FSchedule{Entries: []Entry{{ids[0], 1}, {ids[2], 0}}}
	c := s.Clone()
	c.Entries[0].Recoveries = 0
	if s.Entries[0].Recoveries != 1 {
		t.Error("Clone must not share entry storage")
	}
	if s.IndexOf(ids[2]) != 1 || s.IndexOf(ids[1]) != -1 {
		t.Error("IndexOf mismatch")
	}
	if !s.Contains(ids[0]) || s.Contains(ids[1]) {
		t.Error("Contains mismatch")
	}
	d := s.Dropped(a)
	if len(d) != 1 || d[0] != ids[1] {
		t.Errorf("Dropped = %v, want [P2]", d)
	}
	ord := s.Order()
	if len(ord) != 2 || ord[0] != ids[0] || ord[1] != ids[2] {
		t.Errorf("Order = %v", ord)
	}
	if got := s.String(); got != "#0(f=1) #2" {
		t.Errorf("String = %q", got)
	}
	if got := s.Format(a); got != "P1(f=1) P3 | dropped: P2" {
		t.Errorf("Format = %q", got)
	}
}

func TestPeriodViolationError(t *testing.T) {
	a := model.NewApplication("p", 50, 0, 1)
	x := a.AddProcess(model.Process{Name: "A", Kind: model.Soft, BCET: 30, AET: 40, WCET: 60, Utility: step(5, 100)})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	err := CheckSchedulable(a, []Entry{{x, 0}}, 0, 0)
	var ue *UnschedulableError
	if !errors.As(err, &ue) {
		t.Fatalf("expected UnschedulableError, got %v", err)
	}
	if ue.Proc != model.NoProcess || ue.Bound != 50 {
		t.Errorf("violation = %+v, want period violation at bound 50", ue)
	}
	if ue.Error() == "" {
		t.Error("empty error text")
	}
}

// bruteRecovery computes the worst-case recovery cost by exhaustive
// enumeration, for cross-checking the greedy analysis.
func bruteRecovery(costs []Time, maxes []int, k int) Time {
	var rec func(i, left int) Time
	rec = func(i, left int) Time {
		if i == len(costs) || left == 0 {
			return 0
		}
		var best Time
		for n := 0; n <= maxes[i] && n <= left; n++ {
			v := Time(n)*costs[i] + rec(i+1, left-n)
			if v > best {
				best = v
			}
		}
		return best
	}
	return rec(0, k)
}

// TestWorstCaseGreedyMatchesBruteForce: the greedy shared-slack computation
// equals exhaustive enumeration on random small instances.
func TestWorstCaseGreedyMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		k := rng.Intn(4)
		app := model.NewApplication("r", 1_000_000, k, 1+Time(rng.Intn(20)))
		entries := make([]Entry, n)
		costs := make([]Time, n)
		maxes := make([]int, n)
		for i := 0; i < n; i++ {
			w := 1 + Time(rng.Intn(100))
			id := app.AddProcess(model.Process{
				Name: string(rune('A' + i)), Kind: model.Soft,
				BCET: w, AET: w, WCET: w, Utility: step(1, 10),
			})
			f := rng.Intn(k + 1)
			entries[i] = Entry{Proc: id, Recoveries: f}
			costs[i] = w + app.Mu()
			maxes[i] = f
		}
		if err := app.Validate(); err != nil {
			t.Log(err)
			return false
		}
		c := WorstCaseCompletions(app, entries, 0, k)
		// Check only the final entry (the full item set).
		var sumW Time
		for i := range entries {
			sumW += app.Proc(entries[i].Proc).WCET
		}
		want := sumW + bruteRecovery(costs, maxes, k)
		return c.WorstCase[n-1] == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestWorstCaseMonotoneProperty: worst-case completions never decrease when
// k grows, and always dominate the no-fault finish times.
func TestWorstCaseMonotoneProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		app := model.NewApplication("r", 1_000_000, 5, 10)
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			w := 1 + Time(rng.Intn(100))
			id := app.AddProcess(model.Process{
				Name: string(rune('A' + i)), Kind: model.Soft,
				BCET: w / 2, AET: w / 2, WCET: w, Utility: step(1, 10),
			})
			entries[i] = Entry{Proc: id, Recoveries: rng.Intn(3)}
		}
		if err := app.Validate(); err != nil {
			return false
		}
		prev := WorstCaseCompletions(app, entries, 0, 0)
		for i := range entries {
			if prev.WorstCase[i] < prev.Finish[i] {
				return false
			}
		}
		for k := 1; k <= 5; k++ {
			cur := WorstCaseCompletions(app, entries, 0, k)
			for i := range entries {
				if cur.WorstCase[i] < prev.WorstCase[i] {
					t.Logf("WCC decreased with k=%d at entry %d", k, i)
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProjectedUtilityPanicsOnBadFixed(t *testing.T) {
	a, ids := fig1(t)
	s := &FSchedule{Entries: []Entry{{ids[0], 1}}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for fixed longer than entries")
		}
	}()
	ProjectedUtility(a, s, []Time{1, 2}, 2)
}
