//go:build !race

package runtime_test

// raceEnabled reports whether the race detector instruments this build.
// The allocation-count tests consult it: under -race, sync.Pool
// deliberately drops a quarter of Put items to widen interleavings, so
// pooled paths allocate spuriously and AllocsPerRun is meaningless.
const raceEnabled = false
