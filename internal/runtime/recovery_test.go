package runtime_test

import (
	"math/rand"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/runtime"
	"ftsched/internal/schedule"
	"ftsched/internal/sim"
)

// recFixture wraps one hard process (WCET 30, k = 2) under the given
// recovery model as a static one-node tree, so every dispatch step is
// hand-computable.
func recFixture(t testing.TB, m model.RecoveryModel) *core.Tree {
	t.Helper()
	a := model.NewApplication("rec", 1000, 2, 10)
	p1 := a.AddProcess(model.Process{Name: "P1", Kind: model.Hard, BCET: 10, AET: 25, WCET: 30, Deadline: 900})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	app := a
	if !m.IsCanonical() {
		var err error
		app, err = a.WithRecovery(m)
		if err != nil {
			t.Fatal(err)
		}
	}
	s := &schedule.FSchedule{Entries: []schedule.Entry{{Proc: p1, Recoveries: 2}}}
	return sim.StaticTree(app, s)
}

// TestDispatchRecoveryTimeline pins the single-core fault-path arithmetic
// of each recovery model against hand-computed timelines.
func TestDispatchRecoveryTimeline(t *testing.T) {
	cases := []struct {
		name       string
		m          model.RecoveryModel
		dur        model.Time
		faults     int
		completion model.Time
	}{
		// Canonical: 30 + (10+30) + (10+30) = 110.
		{"reexec two faults", model.ReExecutionModel(), 30, 2, 110},
		// Restart latency 7: 30 + (7+30) + (7+30) = 104.
		{"restart two faults", model.RestartModel(7), 30, 2, 104},
		// Checkpoint(10,2,3) at WCET: first attempt 30+2·2 = 34 (checkpoints
		// at 10 and 20, none at completion); each fault rolls back 3 and
		// re-runs the final 10-unit segment: 34 + 13 + 13 = 60.
		{"checkpoint two faults at WCET", model.CheckpointModel(10, 2, 3), 30, 2, 60},
		// Checkpoint at duration 25: attempt 25+2·2 = 29, final segment
		// 25-20 = 5: 29 + (3+5) = 37.
		{"checkpoint one fault mid-segment", model.CheckpointModel(10, 2, 3), 25, 1, 37},
		// Exactly at a segment boundary (20): attempt 20+2 = 22 (one
		// checkpoint at 10), resume is the full segment 10: 22 + 3 + 10 = 35.
		{"checkpoint fault at boundary", model.CheckpointModel(10, 2, 3), 20, 1, 35},
		// No faults: only the checkpoint overheads are paid.
		{"checkpoint fault-free", model.CheckpointModel(10, 2, 3), 30, 0, 34},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tree := recFixture(t, tc.m)
			d := runtime.MustNewDispatcher(tree)
			res, err := d.Run(runtime.Scenario{
				Durations: []model.Time{tc.dur},
				FaultsAt:  []int{tc.faults},
				NFaults:   tc.faults,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcomes[0] != runtime.Completed {
				t.Fatalf("outcome = %v, want Completed", res.Outcomes[0])
			}
			if res.CompletionTimes[0] != tc.completion {
				t.Errorf("completion = %d, want %d", res.CompletionTimes[0], tc.completion)
			}
			if res.Recoveries != tc.faults {
				t.Errorf("recoveries = %d, want %d", res.Recoveries, tc.faults)
			}
			// Single core: busy time equals the completion time, and with
			// active power 1 / idle power 0 so does the energy.
			if res.CoreBusy[0] != tc.completion || res.Energy != float64(tc.completion) {
				t.Errorf("busy/energy = %d/%v, want %d", res.CoreBusy[0], res.Energy, tc.completion)
			}
		})
	}
}

// TestDispatchRecoveryMapped: on a two-core platform a checkpoint rollback
// stays on the primary core (checkpoint state is local), while restart and
// re-execution hop to the recovery core.
func TestDispatchRecoveryMapped(t *testing.T) {
	mk := func(m model.RecoveryModel) *core.Tree {
		a := model.NewApplication("mapped-rec", 1000, 1, 10)
		p1 := a.AddProcess(model.Process{Name: "A", Kind: model.Hard, BCET: 40, AET: 40, WCET: 40, Deadline: 900})
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		app, err := a.WithPlatform(lpHP(t), model.Mapping{
			Primary:  []model.CoreID{0},
			Recovery: []model.CoreID{1},
		})
		if err != nil {
			t.Fatal(err)
		}
		app, err = app.WithRecovery(m)
		if err != nil {
			t.Fatal(err)
		}
		s := &schedule.FSchedule{Entries: []schedule.Entry{{Proc: p1, Recoveries: 1}}}
		return sim.StaticTree(app, s)
	}
	sc := runtime.Scenario{Durations: []model.Time{40}, FaultsAt: []int{1}, NFaults: 1}

	// Restart(6): lp attempt 40, latency 6 on hp, scaled re-run 20 on hp.
	d := runtime.MustNewDispatcher(mk(model.RestartModel(6)))
	res, err := d.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTimes[0] != 66 {
		t.Errorf("restart completion = %d, want 40+6+20", res.CompletionTimes[0])
	}
	if res.CoreBusy[0] != 40 || res.CoreBusy[1] != 26 {
		t.Errorf("restart core busy = %v, want [40 26]", res.CoreBusy)
	}

	// Checkpoint(15,1,4): attempt 40+2·1 = 42 (checkpoints at 15 and 30),
	// rollback 4 and the final 10-unit segment re-run on the PRIMARY core:
	// 42 + 4 + 10 = 56, all of it lp busy time.
	d = runtime.MustNewDispatcher(mk(model.CheckpointModel(15, 1, 4)))
	res, err = d.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTimes[0] != 56 {
		t.Errorf("checkpoint completion = %d, want 42+4+10", res.CompletionTimes[0])
	}
	if res.CoreBusy[0] != 56 || res.CoreBusy[1] != 0 {
		t.Errorf("checkpoint core busy = %v, want [56 0] (rollback stays on the primary)", res.CoreBusy)
	}
}

// TestDispatchRecoveryOverrunRollback: an injected WCET overrun recurs in
// full on every re-execution, but a checkpoint re-run repeats only its
// final segment, so at most that much of the excess is charged again.
func TestDispatchRecoveryOverrunRollback(t *testing.T) {
	mk := func(m model.RecoveryModel) *runtime.Dispatcher {
		tree := recFixture(t, m)
		return runtime.MustNewDispatcher(tree,
			runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: runtime.PolicyBestEffort}))
	}
	// Duration 50 = WCET 30 + 20 excess, one fault.
	sc := runtime.Scenario{Durations: []model.Time{50}, FaultsAt: []int{1}, NFaults: 1}

	// Re-execution repeats the whole overrun: 20 + 20 = 40.
	res, err := mk(model.ReExecutionModel()).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverrunTotal != 40 {
		t.Errorf("reexec OverrunTotal = %d, want 40", res.OverrunTotal)
	}
	// Checkpoint(10,2,3): resume re-runs the final segment of the sampled
	// 50-unit duration (50-40 = 10), so only min(20, 10) of the excess
	// recurs: 20 + 10 = 30.
	res, err = mk(model.CheckpointModel(10, 2, 3)).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverrunTotal != 30 {
		t.Errorf("checkpoint OverrunTotal = %d, want 30", res.OverrunTotal)
	}
}

// TestDispatchRecoveryAllocFree: the 0 allocs/cycle contract must hold
// under every recovery model (the acceptance gate).
func TestDispatchRecoveryAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	base := apps.CruiseController()
	for _, tc := range []struct {
		name string
		m    model.RecoveryModel
	}{
		{"reexec", model.ReExecutionModel()},
		{"restart", model.RestartModel(base.Mu())},
		{"checkpoint", model.CheckpointModel(base.Mu()*4, base.Mu()/2, base.Mu())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			app := base
			if !tc.m.IsCanonical() {
				var err error
				app, err = base.WithRecovery(tc.m)
				if err != nil {
					t.Fatal(err)
				}
			}
			tree := synthesize(t, app, 20)
			d := runtime.MustNewDispatcher(tree)
			rng := rand.New(rand.NewSource(31))
			sc := sim.MustSample(app, rng, 2, nil)
			var res runtime.Result
			d.RunInto(&res, sc) // warm up the result buffers and the cycle pool
			allocs := testing.AllocsPerRun(200, func() {
				d.RunInto(&res, sc)
			})
			if allocs != 0 {
				t.Errorf("RunInto allocates %.2f times per cycle under %s, want 0", allocs, tc.name)
			}
		})
	}
}

// BenchmarkDispatchRecovery measures the per-cycle dispatch cost under each
// recovery model (CI uploads this block into BENCH_dispatch.json).
func BenchmarkDispatchRecovery(b *testing.B) {
	base := apps.CruiseController()
	for _, tc := range []struct {
		name string
		m    model.RecoveryModel
	}{
		{"reexec", model.ReExecutionModel()},
		{"restart", model.RestartModel(base.Mu())},
		{"checkpoint", model.CheckpointModel(base.Mu()*4, base.Mu()/2, base.Mu())},
	} {
		b.Run(tc.name, func(b *testing.B) {
			app := base
			if !tc.m.IsCanonical() {
				var err error
				app, err = base.WithRecovery(tc.m)
				if err != nil {
					b.Fatal(err)
				}
			}
			tree := synthesize(b, app, 20)
			d := runtime.MustNewDispatcher(tree)
			rng := rand.New(rand.NewSource(31))
			sc := sim.MustSample(app, rng, 2, nil)
			var res runtime.Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.RunInto(&res, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
