package runtime

import (
	"fmt"

	"ftsched/internal/model"
)

// DegradePolicy selects how a Dispatcher with an attached envelope
// (WithEnvelope) reacts to the first out-of-model event of a cycle — a
// WCET overrun, a fault beyond the application bound k, or a time
// regression. The paper's guarantees hold only inside its fault model;
// the policy decides what the runtime still promises outside it.
type DegradePolicy int

const (
	// PolicyStrict stops dispatching after accounting the violating entry
	// and returns a typed *EnvelopeError carrying the full event record.
	// Hard processes that never ran are reported as violations. The zero
	// value: the strictest containment is the default.
	PolicyStrict DegradePolicy = iota
	// PolicyShedSoft drops all remaining soft processes and finishes the
	// hard ones on a precomputed emergency hard-only suffix schedule,
	// granting them unlimited re-executions. Guard dispatch stops (the
	// tree's switch guards price soft utility that no longer exists).
	PolicyShedSoft
	// PolicyBestEffort keeps dispatching the unmodified schedule and only
	// records the violations on Result.Violations.
	PolicyBestEffort
)

// String implements fmt.Stringer.
func (p DegradePolicy) String() string {
	switch p {
	case PolicyStrict:
		return "strict"
	case PolicyShedSoft:
		return "shed-soft"
	case PolicyBestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("DegradePolicy(%d)", int(p))
	}
}

// MarshalText implements encoding.TextMarshaler, so policies round-trip
// through JSON as their stable names.
func (p DegradePolicy) MarshalText() ([]byte, error) {
	switch p {
	case PolicyStrict, PolicyShedSoft, PolicyBestEffort:
		return []byte(p.String()), nil
	default:
		return nil, fmt.Errorf("runtime: unknown DegradePolicy %d", int(p))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *DegradePolicy) UnmarshalText(text []byte) error {
	switch string(text) {
	case "strict":
		*p = PolicyStrict
	case "shed-soft":
		*p = PolicyShedSoft
	case "best-effort":
		*p = PolicyBestEffort
	default:
		return fmt.Errorf("runtime: unknown degrade policy %q", text)
	}
	return nil
}

// ViolationKind classifies one envelope event.
type ViolationKind int

const (
	// WCETOverrun: an execution took longer than the process WCET
	// (out-of-model; triggers the policy).
	WCETOverrun ViolationKind = iota
	// ExtraFault: a fault was consumed beyond the application bound k
	// (out-of-model; triggers the policy).
	ExtraFault
	// BudgetExhausted: a process was abandoned after exhausting its
	// recovery budget. This is in-model behaviour — the paper drops soft
	// processes out of budget — so it is informational: recorded on every
	// Result, even without an envelope, and never triggers the policy.
	BudgetExhausted
	// TimeRegression: an execution reported a negative duration — observed
	// time ran backwards mid-cycle (out-of-model; triggers the policy).
	TimeRegression
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case WCETOverrun:
		return "wcet-overrun"
	case ExtraFault:
		return "extra-fault"
	case BudgetExhausted:
		return "budget-exhausted"
	case TimeRegression:
		return "time-regression"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// MarshalText implements encoding.TextMarshaler.
func (k ViolationKind) MarshalText() ([]byte, error) {
	switch k {
	case WCETOverrun, ExtraFault, BudgetExhausted, TimeRegression:
		return []byte(k.String()), nil
	default:
		return nil, fmt.Errorf("runtime: unknown ViolationKind %d", int(k))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *ViolationKind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "wcet-overrun":
		*k = WCETOverrun
	case "extra-fault":
		*k = ExtraFault
	case "budget-exhausted":
		*k = BudgetExhausted
	case "time-regression":
		*k = TimeRegression
	default:
		return fmt.Errorf("runtime: unknown violation kind %q", text)
	}
	return nil
}

// ViolationEvent is one envelope event of a cycle. Magnitude depends on
// the kind: the time beyond WCET for WCETOverrun, how far the consumed
// fault count exceeds k for ExtraFault (1 for the k+1-th fault), the
// number of faults that hit the abandoned process for BudgetExhausted,
// and the amount time ran backwards for TimeRegression.
type ViolationEvent struct {
	Kind      ViolationKind   `json:"kind"`
	Proc      model.ProcessID `json:"proc"`
	At        model.Time      `json:"at"`
	Magnitude model.Time      `json:"magnitude"`
}

// EnvelopeConfig configures the out-of-model containment layer attached
// with WithEnvelope.
type EnvelopeConfig struct {
	// Policy is applied at the first out-of-model event of a cycle. The
	// zero value is PolicyStrict.
	Policy DegradePolicy
	// Clamp truncates out-of-model durations before they advance the
	// cycle clock — a WCET overrun executes for exactly WCET, a time
	// regression for 0 — modelling a watchdog that cuts the process off
	// at its budget. The violation is still recorded and still triggers
	// the policy; only the timeline stays in-model.
	Clamp bool
}

// WithEnvelope attaches an out-of-model containment envelope to the
// Dispatcher: every cycle, WCET overruns, faults beyond k and time
// regressions are detected (at the completion of the affected execution,
// matching the paper's fault-detection architecture), recorded on
// Result.Violations and counted on the obs Envelope* counters, and cfg's
// DegradePolicy is applied at the first such event. PolicyShedSoft
// precomputes emergency hard-only suffix schedules for every tree node at
// construction time, so the shed path performs no allocation and no scan
// per cycle.
func WithEnvelope(cfg EnvelopeConfig) Option {
	return func(d *Dispatcher) {
		d.envelope = true
		d.envPolicy = cfg.Policy
		d.envClamp = cfg.Clamp
	}
}

// EnvelopeError is returned by Run, RunInto and RunTrace under
// PolicyStrict when a cycle left the fault model. The Result passed to
// RunInto is still fully accounted up to the abort point (hard processes
// that never ran appear in Result.HardViolations), so callers can both
// fail fast and inspect the partial cycle.
type EnvelopeError struct {
	// Policy is the policy that was in force (always PolicyStrict today).
	Policy DegradePolicy `json:"policy"`
	// Events is the cycle's full violation record, in detection order —
	// an independent copy, still valid after the Result is reused.
	Events []ViolationEvent `json:"events"`
}

// Error implements error.
func (e *EnvelopeError) Error() string {
	first := "none"
	if len(e.Events) > 0 {
		ev := e.Events[0]
		first = fmt.Sprintf("%s on process %d at %d", ev.Kind, ev.Proc, ev.At)
	}
	return fmt.Sprintf("runtime: cycle left the fault model under %s policy: %d event(s), first %s",
		e.Policy, len(e.Events), first)
}
