package runtime

import (
	"fmt"

	"ftsched/internal/model"
	"ftsched/internal/utility"
)

// Scenario fixes everything that is random in one operation cycle: the
// actual execution time of every process and the processes hit by
// transient faults.
//
// Modelling choices (documented in DESIGN.md): a process's re-execution
// takes the same sampled duration as its primary execution (same input
// data), and each injected fault picks a victim process uniformly at
// random among the given candidates; the fault hits the victim's next
// execution attempt. A fault aimed at a process that never starts (because
// it was dropped) does not materialise, mirroring the physical reality
// that a transient fault only matters while its victim is executing.
type Scenario struct {
	// Durations[p] is the sampled actual execution time of process p,
	// uniform on [BCET, WCET].
	Durations []model.Time
	// FaultsAt[p] is the number of faults that will hit p's first
	// execution attempts.
	FaultsAt []int
	// NFaults is the total number of injected faults.
	NFaults int
}

// Validate checks a hand-built scenario against the application.
func (sc *Scenario) Validate(app *model.Application) error {
	if len(sc.Durations) != app.N() || len(sc.FaultsAt) != app.N() {
		return fmt.Errorf("sim: scenario sized for %d processes, application has %d",
			len(sc.Durations), app.N())
	}
	total := 0
	for id := 0; id < app.N(); id++ {
		p := app.Proc(model.ProcessID(id))
		if sc.Durations[id] < p.BCET || sc.Durations[id] > p.WCET {
			return fmt.Errorf("sim: duration %d of %s outside [%d,%d]",
				sc.Durations[id], p.Name, p.BCET, p.WCET)
		}
		if sc.FaultsAt[id] < 0 {
			return fmt.Errorf("sim: negative fault count on %s", p.Name)
		}
		total += sc.FaultsAt[id]
	}
	if total != sc.NFaults {
		return fmt.Errorf("sim: fault counts sum to %d, NFaults is %d", total, sc.NFaults)
	}
	if sc.NFaults > app.K() {
		return fmt.Errorf("sim: %d faults exceed the application bound k=%d", sc.NFaults, app.K())
	}
	return nil
}

// ProcessOutcome records how one process ended in a simulated cycle.
type ProcessOutcome int

const (
	// NotScheduled: the process was dropped off-line (absent from the
	// active schedule) or skipped after a schedule switch.
	NotScheduled ProcessOutcome = iota
	// Completed: the process ran to completion (possibly re-executed).
	Completed
	// AbandonedByFault: a fault hit the process and its recovery budget
	// was exhausted; it was dropped at run time.
	AbandonedByFault
)

// Result is the outcome of executing one scenario.
type Result struct {
	// Utility is the total utility of the cycle: Σ α_i · U_i(t_i^c) over
	// the soft processes that completed.
	Utility float64
	// Outcomes and CompletionTimes are indexed by process ID;
	// CompletionTimes is meaningful only for Completed processes.
	Outcomes        []ProcessOutcome
	CompletionTimes []model.Time
	// HardViolations lists hard processes that missed their deadline or
	// were not executed. It must stay empty for any schedule or tree
	// synthesised by this library with NFaults <= k; a non-empty slice
	// indicates a scheduler bug.
	HardViolations []model.ProcessID
	// Makespan is the completion time of the last executed entry.
	Makespan model.Time
	// Switches counts quasi-static schedule switches taken.
	Switches int
	// FinalNode is the ID of the tree node active at the end.
	FinalNode int
	// FaultsConsumed counts injected faults that actually hit an
	// executing process.
	FaultsConsumed int
	// Recoveries counts re-executions performed.
	Recoveries int
	// Fallbacks counts mid-cycle switches whose target node was unusable
	// and was replaced by the root f-schedule. Always zero unless the
	// dispatch table was corrupted after construction; mirrored on the
	// obs.DispatchGuardFallbacks counter.
	Fallbacks int
	// Violations is the cycle's envelope event record, in detection
	// order. BudgetExhausted events (in-model soft abandonment) are
	// recorded on every cycle; out-of-model kinds (WCETOverrun,
	// ExtraFault, TimeRegression) require an envelope (WithEnvelope).
	// The slice is reused across RunInto calls — copy it to keep it.
	Violations []ViolationEvent
	// Degraded reports that PolicyShedSoft tripped: remaining soft work
	// was dropped and the cycle finished on the emergency hard-only
	// suffix schedule.
	Degraded bool
	// ShedSlack is the conservative slack recovered by shedding: the
	// summed WCET of the soft entries skipped between the shed point and
	// the first remaining hard entry. Zero unless Degraded.
	ShedSlack model.Time
	// OverrunTotal is the materialised out-of-model execution excess: for
	// every attempt that ran longer than its process WCET, the excess
	// beyond WCET, summed over the cycle. A re-executed overrunning
	// process contributes once per attempt — unlike the single
	// WCETOverrun event, whose magnitude is the per-attempt excess.
	// Always zero with Clamp (truncated attempts stay in-model).
	OverrunTotal model.Time
	// Energy is the platform energy consumed by the cycle: active energy
	// (per-core busy time × active power) plus idle energy (per-core idle
	// time within the period × idle power). On the canonical single-core
	// platform (speed 1, active power 1, idle power 0) Energy equals the
	// core's busy time. EnergyActive and EnergyIdle are the two summands.
	Energy, EnergyActive, EnergyIdle float64
	// CoreBusy[c] is the wall-clock time core c spent executing (attempts
	// plus recovery overheads) during the cycle. The slice is reused
	// across RunInto calls — copy it to keep it.
	CoreBusy []model.Time
	// CoreEnergy[c] is the per-core energy (active + idle) of the cycle.
	// The slice is reused across RunInto calls — copy it to keep it.
	CoreEnergy []float64
}

// TotalUtility applies the stale-value model to realised outcomes:
// Σ α_i · U_i(t_i^c) over the soft processes that completed. It is the
// standalone (allocating) form of the accounting a Dispatcher performs
// with cached topology; the online rescheduler, which has no tree to
// compile, shares it.
func TotalUtility(app *model.Application, outcomes []ProcessOutcome, done []model.Time) float64 {
	status := make([]utility.StaleStatus, app.N())
	for id := range status {
		if outcomes[id] == Completed {
			status[id] = utility.Executed
		} else {
			status[id] = utility.Dropped
		}
	}
	alpha, err := app.StaleCoefficients(status)
	if err != nil {
		panic(err) // unreachable for a validated application
	}
	var total float64
	for id := 0; id < app.N(); id++ {
		pid := model.ProcessID(id)
		if app.Proc(pid).Kind != model.Soft || outcomes[id] != Completed {
			continue
		}
		total += alpha[id] * app.UtilityOf(pid).Value(done[id])
	}
	return total
}

// TraceEventKind classifies execution-trace events.
type TraceEventKind int

const (
	// TraceStart: an execution attempt of a process begins.
	TraceStart TraceEventKind = iota
	// TraceFault: a transient fault is detected at the end of an attempt.
	TraceFault
	// TraceRecovery: the recovery overhead µ begins (re-execution follows).
	TraceRecovery
	// TraceComplete: the process completed.
	TraceComplete
	// TraceAbandon: the process was abandoned (soft, budget exhausted).
	TraceAbandon
	// TraceSwitch: the online scheduler switched to another schedule.
	TraceSwitch
)

// String implements fmt.Stringer.
func (k TraceEventKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceFault:
		return "fault"
	case TraceRecovery:
		return "recovery"
	case TraceComplete:
		return "complete"
	case TraceAbandon:
		return "abandon"
	case TraceSwitch:
		return "switch"
	default:
		return "TraceEventKind(?)"
	}
}

// TraceEvent is one timestamped event of a simulated cycle.
type TraceEvent struct {
	Kind TraceEventKind
	// At is the event time.
	At model.Time
	// Proc is the process concerned (undefined for TraceSwitch).
	Proc model.ProcessID
	// Attempt numbers the execution attempt (0 = primary execution).
	Attempt int
	// Node is the tree node switched to (TraceSwitch only).
	Node int
}
