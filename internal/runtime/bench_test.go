package runtime_test

import (
	"fmt"
	"math/rand"
	goruntime "runtime"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
)

// BenchmarkDispatch measures one simulated operation cycle on the cruise
// controller tree (M=20, two injected faults) with a pre-compiled
// dispatcher and a reused Result — the steady state of a Monte-Carlo
// evaluation. The pre-refactor executor walked the pointer tree and
// allocated the result and the guard scan per cycle (35 allocs/op);
// EXPERIMENTS.md records the before/after numbers.
func BenchmarkDispatch(b *testing.B) {
	app := apps.CruiseController()
	tree := synthesize(b, app, 20)
	d := runtime.MustNewDispatcher(tree)
	rng := rand.New(rand.NewSource(1))
	sc := sim.MustSample(app, rng, 2, nil)
	var res runtime.Result
	d.RunInto(&res, sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RunInto(&res, sc)
	}
}

// BenchmarkDispatchNopSink is BenchmarkDispatch with an explicitly
// installed NopSink: the disabled-observability path, which must be
// indistinguishable from no sink at all.
func BenchmarkDispatchNopSink(b *testing.B) {
	benchDispatchSink(b, obs.NopSink{})
}

// BenchmarkDispatchSink is BenchmarkDispatch with a live Metrics collector
// attached; the delta against BenchmarkDispatch is the full per-cycle
// instrumentation cost (counter flush, slack/switch observations, batched
// guard-depth histogram).
func BenchmarkDispatchSink(b *testing.B) {
	benchDispatchSink(b, obs.NewMetrics())
}

func benchDispatchSink(b *testing.B, s obs.Sink) {
	app := apps.CruiseController()
	tree := synthesize(b, app, 20)
	d := runtime.MustNewDispatcher(tree, runtime.WithSink(s))
	rng := rand.New(rand.NewSource(1))
	sc := sim.MustSample(app, rng, 2, nil)
	var res runtime.Result
	d.RunInto(&res, sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RunInto(&res, sc)
	}
}

// BenchmarkDispatchEnvelope measures the containment layer's cost on the
// cycle of BenchmarkDispatch: the in-model variant prices pure detection
// (per-entry WCET/regression checks plus the fault-bound check), the
// out-of-model variant additionally walks the shed path — violation
// record, emergency-suffix switch — every cycle under PolicyShedSoft.
func BenchmarkDispatchEnvelope(b *testing.B) {
	app := apps.CruiseController()
	rng := rand.New(rand.NewSource(1))
	inSc := sim.MustSample(app, rng, 2, nil)
	outSc := sim.MustSample(app, rng, 0, nil)
	soft := app.SoftIDs()
	outSc.Durations[soft[0]] = app.Proc(soft[0]).WCET + 50
	for _, tc := range []struct {
		name   string
		policy runtime.DegradePolicy
		sc     runtime.Scenario
	}{
		{"shed-soft/in-model", runtime.PolicyShedSoft, inSc},
		{"shed-soft/out-of-model", runtime.PolicyShedSoft, outSc},
		{"best-effort/out-of-model", runtime.PolicyBestEffort, outSc},
	} {
		b.Run(tc.name, func(b *testing.B) {
			tree := synthesize(b, app, 20)
			d := runtime.MustNewDispatcher(tree, runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: tc.policy}))
			var res runtime.Result
			d.RunInto(&res, tc.sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.RunInto(&res, tc.sc)
			}
		})
	}
}

// BenchmarkMonteCarlo measures the full parallel evaluation pipeline —
// compile, sample, dispatch, reduce — at the scale of one experiment
// configuration (2000 scenarios, two faults each).
func BenchmarkMonteCarlo(b *testing.B) {
	app := apps.CruiseController()
	tree := synthesize(b, app, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.MonteCarlo(tree, sim.MCConfig{Scenarios: 2000, Faults: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloBatch measures the batch evaluation engine in its
// steady state — the BENCH_dispatch.json workload (cruise controller,
// M=20, 2000 scenarios, two faults each) with a pre-compiled dispatcher —
// sequentially and with one worker per CPU. The scenarios/sec metric is
// the engine's headline number; the `batch` block of BENCH_dispatch.json
// records it next to the pre-engine per-scenario baseline.
func BenchmarkMonteCarloBatch(b *testing.B) {
	app := apps.CruiseController()
	tree := synthesize(b, app, 20)
	d := runtime.MustNewDispatcher(tree)
	const scenarios = 2000
	workerCounts := []int{1}
	if n := goruntime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := sim.MCConfig{Scenarios: scenarios, Faults: 2, Seed: 1, Workers: workers, Dispatcher: d}
			if _, err := sim.MonteCarlo(tree, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.MonteCarlo(tree, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(scenarios)*float64(b.N)/b.Elapsed().Seconds(), "scenarios/sec")
		})
	}
}

// BenchmarkDispatchMapped is BenchmarkDispatch on the same cruise
// controller tree synthesised for the heterogeneous lp/hp platform with
// the biased mapping: per-core ready times, cross-core precedence and the
// per-core energy fold are all on the hot path. The delta against
// BenchmarkDispatch is the whole cost of the platform generalisation;
// the `dispatch_mapped` block of BENCH_dispatch.json records it.
func BenchmarkDispatchMapped(b *testing.B) {
	base := apps.CruiseController()
	plat := lpHP(b)
	app, err := base.WithPlatform(plat, model.BiasedMapping(base, plat))
	if err != nil {
		b.Fatal(err)
	}
	tree := synthesize(b, app, 20)
	d := runtime.MustNewDispatcher(tree)
	rng := rand.New(rand.NewSource(1))
	sc := sim.MustSample(app, rng, 2, nil)
	var res runtime.Result
	d.RunInto(&res, sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RunInto(&res, sc)
	}
}

// BenchmarkMonteCarloHetero is BenchmarkMonteCarloBatch on the mapped
// heterogeneous tree — the end-to-end cost of a Monte-Carlo evaluation
// when every scenario runs the two-core timeline and the energy
// accounting.
func BenchmarkMonteCarloHetero(b *testing.B) {
	base := apps.CruiseController()
	plat := lpHP(b)
	app, err := base.WithPlatform(plat, model.BiasedMapping(base, plat))
	if err != nil {
		b.Fatal(err)
	}
	tree := synthesize(b, app, 20)
	d := runtime.MustNewDispatcher(tree)
	const scenarios = 2000
	workerCounts := []int{1}
	if n := goruntime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := sim.MCConfig{Scenarios: scenarios, Faults: 2, Seed: 1, Workers: workers, Dispatcher: d}
			if _, err := sim.MonteCarlo(tree, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.MonteCarlo(tree, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(scenarios)*float64(b.N)/b.Elapsed().Seconds(), "scenarios/sec")
		})
	}
}
