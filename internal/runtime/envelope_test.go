package runtime_test

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
)

// inModel samples a scenario within the fault model (durations in
// [BCET, WCET], at most k faults).
func inModel(t testing.TB, app *model.Application, rng *rand.Rand, faults int) runtime.Scenario {
	t.Helper()
	return sim.MustSample(app, rng, faults, nil)
}

// countKind tallies the violation events of one kind.
func countKind(events []runtime.ViolationEvent, kind runtime.ViolationKind) int {
	n := 0
	for _, ev := range events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// outOfModelKinds counts the events that leave the fault model (everything
// but the informational BudgetExhausted).
func outOfModelKinds(events []runtime.ViolationEvent) int {
	return len(events) - countKind(events, runtime.BudgetExhausted)
}

// TestEnvelopeInModelTransparent: inside the fault model the envelope must
// be invisible — for every policy and clamp mode, results are identical to
// a plain dispatcher, nothing degrades, no out-of-model event is recorded
// and PolicyStrict never errors.
func TestEnvelopeInModelTransparent(t *testing.T) {
	app := apps.CruiseController()
	tree := synthesize(t, app, 20)
	plain := runtime.MustNewDispatcher(tree)
	for _, policy := range []runtime.DegradePolicy{runtime.PolicyStrict, runtime.PolicyShedSoft, runtime.PolicyBestEffort} {
		for _, clamp := range []bool{false, true} {
			d := runtime.MustNewDispatcher(tree, runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: policy, Clamp: clamp}))
			rng := rand.New(rand.NewSource(101))
			var res runtime.Result
			for i := 0; i < 300; i++ {
				sc := inModel(t, app, rng, i%(app.K()+1))
				want := mustRun(t, plain, sc)
				if err := d.RunInto(&res, sc); err != nil {
					t.Fatalf("%v clamp=%v scenario %d: unexpected error %v", policy, clamp, i, err)
				}
				if !resultsEqual(&res, &want) {
					t.Fatalf("%v clamp=%v scenario %d: envelope changed the result", policy, clamp, i)
				}
				if res.Degraded || res.ShedSlack != 0 {
					t.Fatalf("%v clamp=%v scenario %d: degraded inside the model", policy, clamp, i)
				}
				if n := outOfModelKinds(res.Violations); n != 0 {
					t.Fatalf("%v clamp=%v scenario %d: %d out-of-model events inside the model: %+v",
						policy, clamp, i, n, res.Violations)
				}
			}
		}
	}
}

// TestBudgetExhaustedRecorded: the recovery-abandon path must leave a
// trace on every Result — one BudgetExhausted event per abandoned process,
// with no envelope attached at all — and must feed the
// obs.EnvelopeBudgetExhausted counter.
func TestBudgetExhaustedRecorded(t *testing.T) {
	app := apps.CruiseController()
	tree := synthesize(t, app, 20)
	m := obs.NewMetrics()
	d := runtime.MustNewDispatcher(tree, runtime.WithSink(m))
	rng := rand.New(rand.NewSource(103))
	var res runtime.Result
	seen, events := 0, int64(0)
	for i := 0; i < 400; i++ {
		sc := inModel(t, app, rng, app.K())
		if err := d.RunInto(&res, sc); err != nil {
			t.Fatal(err)
		}
		for id, out := range res.Outcomes {
			got := 0
			for _, ev := range res.Violations {
				if ev.Kind == runtime.BudgetExhausted && ev.Proc == model.ProcessID(id) {
					got++
					if ev.Magnitude < 1 {
						t.Fatalf("scenario %d: BudgetExhausted magnitude %d, want >= 1 faults", i, ev.Magnitude)
					}
				}
			}
			want := 0
			if out == runtime.AbandonedByFault {
				want = 1
			}
			if got != want {
				t.Fatalf("scenario %d: process %d outcome %v has %d BudgetExhausted events, want %d",
					i, id, out, got, want)
			}
			seen += want
		}
		events += int64(countKind(res.Violations, runtime.BudgetExhausted))
	}
	if seen == 0 {
		t.Fatal("no abandonment observed in 400 k-fault scenarios; test is vacuous")
	}
	if got := m.Counter(obs.EnvelopeBudgetExhausted); got != events {
		t.Errorf("EnvelopeBudgetExhausted counter = %d, want %d", got, events)
	}
}

// fig8Fixture synthesises the Fig. 8 tree and returns a zero-fault
// in-model scenario with every duration at its AET.
func fig8Fixture(t testing.TB) (*model.Application, *runtime.Dispatcher, runtime.Scenario) {
	t.Helper()
	app := apps.Fig8()
	tree := synthesize(t, app, 16)
	plain := runtime.MustNewDispatcher(tree)
	sc := runtime.Scenario{
		Durations: make([]model.Time, app.N()),
		FaultsAt:  make([]int, app.N()),
	}
	for id := 0; id < app.N(); id++ {
		sc.Durations[id] = app.Proc(model.ProcessID(id)).AET
	}
	return app, plain, sc
}

// envDispatcher compiles the Fig. 8 tree with the given envelope config.
func envDispatcher(t testing.TB, cfg runtime.EnvelopeConfig) *runtime.Dispatcher {
	t.Helper()
	return runtime.MustNewDispatcher(synthesize(t, apps.Fig8(), 16), runtime.WithEnvelope(cfg))
}

// TestEnvelopeWCETOverrun: an execution beyond WCET must be recorded with
// its magnitude and handled per policy — best-effort keeps the plain
// timeline, clamp truncates it to the in-model one, shed-soft degrades to
// the hard-only suffix, strict returns the typed error.
func TestEnvelopeWCETOverrun(t *testing.T) {
	app, plain, base := fig8Fixture(t)
	const delta = 37
	p2 := app.IDByName("P2") // soft, scheduled before P5 in the root schedule
	sc := base
	sc.Durations = append([]model.Time(nil), base.Durations...)
	sc.Durations[p2] = app.Proc(p2).WCET + delta

	t.Run("best-effort", func(t *testing.T) {
		d := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyBestEffort})
		res, err := d.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		want := mustRun(t, plain, sc)
		if !resultsEqual(&res, &want) {
			t.Error("best-effort changed the timeline")
		}
		if res.Degraded {
			t.Error("best-effort degraded")
		}
		if n := countKind(res.Violations, runtime.WCETOverrun); n != 1 {
			t.Fatalf("%d WCETOverrun events, want 1: %+v", n, res.Violations)
		}
		ev := res.Violations[0]
		if ev.Proc != p2 || ev.Magnitude != delta {
			t.Errorf("event %+v, want proc %d magnitude %d", ev, p2, delta)
		}
	})

	t.Run("clamp", func(t *testing.T) {
		d := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyBestEffort, Clamp: true})
		res, err := d.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		clamped := base
		clamped.Durations = append([]model.Time(nil), base.Durations...)
		clamped.Durations[p2] = app.Proc(p2).WCET
		want := mustRun(t, plain, clamped)
		if !resultsEqual(&res, &want) {
			t.Error("clamped timeline differs from an in-model WCET run")
		}
		if n := countKind(res.Violations, runtime.WCETOverrun); n != 1 {
			t.Errorf("%d WCETOverrun events, want 1", n)
		}
	})

	t.Run("shed-soft", func(t *testing.T) {
		d := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyShedSoft})
		res, err := d.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded {
			t.Fatal("shed-soft did not degrade on an overrun")
		}
		if len(res.HardViolations) != 0 {
			t.Errorf("hard violations after shedding: %v", res.HardViolations)
		}
		for _, h := range app.HardIDs() {
			if res.Outcomes[h] != runtime.Completed {
				t.Errorf("hard process %d not completed after shedding", h)
			}
		}
		if res.Outcomes[p2] != runtime.Completed {
			t.Error("the overrunning entry itself should complete (detection is at completion)")
		}
	})

	t.Run("strict", func(t *testing.T) {
		d := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyStrict})
		res, err := d.Run(sc)
		var envErr *runtime.EnvelopeError
		if !errors.As(err, &envErr) {
			t.Fatalf("error %v, want *EnvelopeError", err)
		}
		if envErr.Policy != runtime.PolicyStrict {
			t.Errorf("error policy %v", envErr.Policy)
		}
		if !reflect.DeepEqual(envErr.Events, res.Violations) {
			t.Errorf("error events %+v != result violations %+v", envErr.Events, res.Violations)
		}
		if res.Outcomes[p2] != runtime.Completed {
			t.Error("violating entry should be accounted before the abort")
		}
		// Dispatching stopped: the hard process after the violation never
		// ran and must be reported.
		p5 := app.IDByName("P5")
		if res.Outcomes[p5] == runtime.Completed {
			t.Error("strict kept dispatching past the violation")
		}
		found := false
		for _, v := range res.HardViolations {
			if v == p5 {
				found = true
			}
		}
		if !found {
			t.Errorf("P5 missing from HardViolations: %v", res.HardViolations)
		}
	})
}

// TestEnvelopeExtraFault: the k+1-th consumed fault must be recorded as
// ExtraFault. Aimed at a hard process, shed-soft grants it budget-free
// re-execution and it completes; strict and best-effort abandon it at its
// in-model budget and report the hard violation.
func TestEnvelopeExtraFault(t *testing.T) {
	app, _, base := fig8Fixture(t)
	p1 := app.IDByName("P1") // hard, k = 2 recoveries
	sc := base
	sc.FaultsAt = append([]int(nil), base.FaultsAt...)
	sc.FaultsAt[p1] = app.K() + 1
	sc.NFaults = app.K() + 1

	t.Run("best-effort", func(t *testing.T) {
		d := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyBestEffort})
		res, err := d.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if n := countKind(res.Violations, runtime.ExtraFault); n != 1 {
			t.Fatalf("%d ExtraFault events, want 1: %+v", n, res.Violations)
		}
		if n := countKind(res.Violations, runtime.BudgetExhausted); n != 1 {
			t.Errorf("%d BudgetExhausted events, want 1", n)
		}
		if res.Outcomes[p1] != runtime.AbandonedByFault {
			t.Error("best-effort must keep the in-model recovery budget")
		}
		if len(res.HardViolations) == 0 {
			t.Error("abandoned hard process not reported")
		}
	})

	t.Run("shed-soft", func(t *testing.T) {
		d := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyShedSoft})
		res, err := d.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded {
			t.Fatal("shed-soft did not degrade on an extra fault")
		}
		if res.Outcomes[p1] != runtime.Completed {
			t.Error("shed mode must re-execute the hard victim without budget")
		}
		if len(res.HardViolations) != 0 {
			t.Errorf("hard violations: %v", res.HardViolations)
		}
		if n := countKind(res.Violations, runtime.ExtraFault); n != 1 {
			t.Errorf("%d ExtraFault events, want 1", n)
		}
	})

	t.Run("strict", func(t *testing.T) {
		d := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyStrict})
		_, err := d.Run(sc)
		var envErr *runtime.EnvelopeError
		if !errors.As(err, &envErr) {
			t.Fatalf("error %v, want *EnvelopeError", err)
		}
		if countKind(envErr.Events, runtime.ExtraFault) != 1 {
			t.Errorf("error events missing the extra fault: %+v", envErr.Events)
		}
	})
}

// TestEnvelopeExtraFaultSoftVictim: under shed-soft, an extra fault whose
// victim is soft abandons the victim immediately — no recovery time is
// burnt on work that is about to be shed. Soft entries carry small
// recovery budgets (0 in the Fig. 8 root), so the excess is routed
// through the hard P1 first: its two in-model faults are recovered, and
// the third consumed fault lands on soft P2. A root-only tree (M = 1)
// keeps guard switches from dropping P2 before the fault reaches it.
func TestEnvelopeExtraFaultSoftVictim(t *testing.T) {
	app := apps.Fig8()
	tree := synthesize(t, app, 1)
	p1, p2 := app.IDByName("P1"), app.IDByName("P2")
	sc := runtime.Scenario{
		Durations: make([]model.Time, app.N()),
		FaultsAt:  make([]int, app.N()),
		NFaults:   app.K() + 1,
	}
	for id := 0; id < app.N(); id++ {
		sc.Durations[id] = app.Proc(model.ProcessID(id)).AET
	}
	sc.FaultsAt[p1] = app.K()
	sc.FaultsAt[p2] = 1

	d := runtime.MustNewDispatcher(tree, runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: runtime.PolicyShedSoft}))
	res, err := d.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("not degraded")
	}
	if res.Outcomes[p2] != runtime.AbandonedByFault {
		t.Errorf("soft victim outcome %v, want AbandonedByFault", res.Outcomes[p2])
	}
	// The victim was abandoned on policy, not on budget: exactly k
	// recoveries were spent on it (its full in-model budget at most).
	if n := countKind(res.Violations, runtime.BudgetExhausted); n != 0 {
		t.Errorf("%d BudgetExhausted events, want 0 (abandoned by shed, not by budget)", n)
	}
	if len(res.HardViolations) != 0 {
		t.Errorf("hard violations: %v", res.HardViolations)
	}
}

// TestEnvelopeTimeRegression: a negative duration is a time regression;
// clamp mode pins it to zero so the timeline matches an instantaneous
// execution.
func TestEnvelopeTimeRegression(t *testing.T) {
	app, plain, base := fig8Fixture(t)
	p3 := app.IDByName("P3")
	sc := base
	sc.Durations = append([]model.Time(nil), base.Durations...)
	sc.Durations[p3] = -5

	d := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyBestEffort})
	res, err := d.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if n := countKind(res.Violations, runtime.TimeRegression); n != 1 {
		t.Fatalf("%d TimeRegression events, want 1: %+v", n, res.Violations)
	}
	if ev := res.Violations[0]; ev.Proc != p3 || ev.Magnitude != 5 {
		t.Errorf("event %+v, want proc %d magnitude 5", ev, p3)
	}

	dc := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyBestEffort, Clamp: true})
	resc, err := dc.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	zeroed := base
	zeroed.Durations = append([]model.Time(nil), base.Durations...)
	zeroed.Durations[p3] = 0
	want := mustRun(t, plain, zeroed)
	if !resultsEqual(&resc, &want) {
		t.Error("clamped regression differs from a zero-duration run")
	}
}

// TestEnvelopeShedSoftPureFaultBurstsHardSafe is the containment property
// the chaos campaign asserts at scale: with every duration inside
// [BCET, WCET] and fault bursts of any size aimed only at soft processes,
// PolicyShedSoft never misses a hard deadline. The first k consumed
// faults are covered by the certified in-model worst case, the k+1-th
// abandons its soft victim without recovery cost and sheds, and sheds
// remove every later soft-aimed fault from the timeline.
func TestEnvelopeShedSoftPureFaultBurstsHardSafe(t *testing.T) {
	for _, tc := range []struct {
		app *model.Application
		m   int
	}{
		{apps.Fig1(), 8},
		{apps.Fig8(), 16},
	} {
		tree := synthesize(t, tc.app, tc.m)
		d := runtime.MustNewDispatcher(tree, runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: runtime.PolicyShedSoft}))
		soft := tc.app.SoftIDs()
		rng := rand.New(rand.NewSource(107))
		var res runtime.Result
		for i := 0; i < 1000; i++ {
			sc := inModel(t, tc.app, rng, 0)
			burst := rng.Intn(tc.app.K() + 4)
			for f := 0; f < burst; f++ {
				sc.FaultsAt[soft[rng.Intn(len(soft))]]++
			}
			sc.NFaults = burst
			if err := d.RunInto(&res, sc); err != nil {
				t.Fatalf("%s scenario %d: %v", tc.app.Name(), i, err)
			}
			if len(res.HardViolations) != 0 {
				t.Fatalf("%s scenario %d (burst %d): hard violations %v — containment contract broken",
					tc.app.Name(), i, burst, res.HardViolations)
			}
		}
	}
}

// TestEnvelopeErrorJSONRoundTrip: the strict error's event record must
// round-trip through JSON with symbolic kind and policy names — the
// acceptance criterion for machine-readable excursion reports.
func TestEnvelopeErrorJSONRoundTrip(t *testing.T) {
	app, _, base := fig8Fixture(t)
	p2 := app.IDByName("P2")
	sc := base
	sc.Durations = append([]model.Time(nil), base.Durations...)
	sc.Durations[p2] = app.Proc(p2).WCET + 11
	sc.FaultsAt = append([]int(nil), base.FaultsAt...)
	sc.FaultsAt[app.IDByName("P1")] = app.K() + 1
	sc.NFaults = app.K() + 1

	d := envDispatcher(t, runtime.EnvelopeConfig{Policy: runtime.PolicyStrict})
	_, err := d.Run(sc)
	var envErr *runtime.EnvelopeError
	if !errors.As(err, &envErr) {
		t.Fatalf("error %v, want *EnvelopeError", err)
	}
	if len(envErr.Events) == 0 {
		t.Fatal("no events on the error")
	}
	raw, jerr := json.Marshal(envErr)
	if jerr != nil {
		t.Fatal(jerr)
	}
	var back runtime.EnvelopeError
	if jerr := json.Unmarshal(raw, &back); jerr != nil {
		t.Fatalf("unmarshal %s: %v", raw, jerr)
	}
	if back.Policy != envErr.Policy || !reflect.DeepEqual(back.Events, envErr.Events) {
		t.Errorf("round-trip changed the error:\n  %+v\n  %+v", envErr, &back)
	}
}

// TestEnvelopeEnumText: every policy and violation kind round-trips
// through its text form, and unknown names are rejected.
func TestEnvelopeEnumText(t *testing.T) {
	for _, p := range []runtime.DegradePolicy{runtime.PolicyStrict, runtime.PolicyShedSoft, runtime.PolicyBestEffort} {
		text, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back runtime.DegradePolicy
		if err := back.UnmarshalText(text); err != nil || back != p {
			t.Errorf("policy %v: round-trip via %q -> %v, %v", p, text, back, err)
		}
	}
	for _, k := range []runtime.ViolationKind{runtime.WCETOverrun, runtime.ExtraFault, runtime.BudgetExhausted, runtime.TimeRegression} {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back runtime.ViolationKind
		if err := back.UnmarshalText(text); err != nil || back != k {
			t.Errorf("kind %v: round-trip via %q -> %v, %v", k, text, back, err)
		}
	}
	var p runtime.DegradePolicy
	if err := p.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("unknown policy name accepted")
	}
	var k runtime.ViolationKind
	if err := k.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("unknown violation kind accepted")
	}
	if _, err := runtime.DegradePolicy(99).MarshalText(); err == nil {
		t.Error("out-of-range policy marshalled")
	}
	if _, err := runtime.ViolationKind(99).MarshalText(); err == nil {
		t.Error("out-of-range kind marshalled")
	}
}

// TestEnvelopeRejectsUnknownPolicy: NewDispatcher must refuse an envelope
// with an out-of-range policy instead of misdispatching later.
func TestEnvelopeRejectsUnknownPolicy(t *testing.T) {
	tree := synthesize(t, apps.Fig1(), 8)
	if _, err := runtime.NewDispatcher(tree, runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: runtime.DegradePolicy(7)})); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestEnvelopeAllocFree: the containment layer must keep the hot path at
// zero allocations per cycle — with and without violations, with nop and
// live sinks, including the shed path (PolicyShedSoft switching to the
// emergency suffix every cycle). PolicyStrict is gated on in-model cycles
// only: its error path copies the event record by design.
func TestEnvelopeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	app := apps.CruiseController()
	tree := synthesize(t, app, 20)
	rng := rand.New(rand.NewSource(113))
	inSc := sim.MustSample(app, rng, 2, nil)

	// Out-of-model: one soft overrun plus a fault burst past k.
	outSc := sim.MustSample(app, rng, 0, nil)
	soft := app.SoftIDs()
	outSc.Durations[soft[0]] = app.Proc(soft[0]).WCET + 50
	outSc.FaultsAt[soft[1]] = app.K() + 1
	outSc.NFaults = app.K() + 1

	for _, tc := range []struct {
		name   string
		cfg    runtime.EnvelopeConfig
		sc     runtime.Scenario
		strict bool
	}{
		{"strict/in-model", runtime.EnvelopeConfig{Policy: runtime.PolicyStrict}, inSc, true},
		{"shed-soft/in-model", runtime.EnvelopeConfig{Policy: runtime.PolicyShedSoft}, inSc, false},
		{"shed-soft/out-of-model", runtime.EnvelopeConfig{Policy: runtime.PolicyShedSoft}, outSc, false},
		{"best-effort/out-of-model", runtime.EnvelopeConfig{Policy: runtime.PolicyBestEffort}, outSc, false},
		{"best-effort/clamp", runtime.EnvelopeConfig{Policy: runtime.PolicyBestEffort, Clamp: true}, outSc, false},
	} {
		for _, sink := range []struct {
			name string
			s    obs.Sink
		}{
			{"nop", obs.NopSink{}},
			{"live", obs.NewMetrics()},
		} {
			d := runtime.MustNewDispatcher(tree, runtime.WithEnvelope(tc.cfg), runtime.WithSink(sink.s))
			var res runtime.Result
			if err := d.RunInto(&res, tc.sc); err != nil {
				t.Fatalf("%s/%s: %v", tc.name, sink.name, err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				d.RunInto(&res, tc.sc)
			})
			if allocs != 0 {
				t.Errorf("%s/%s: RunInto allocates %.2f times per cycle, want 0", tc.name, sink.name, allocs)
			}
		}
	}
}

// TestEnvelopeSinkCounters: a live sink must see envelope counters that
// match the violation records on the returned Results exactly.
func TestEnvelopeSinkCounters(t *testing.T) {
	app := apps.CruiseController()
	tree := synthesize(t, app, 20)
	m := obs.NewMetrics()
	d := runtime.MustNewDispatcher(tree, runtime.WithEnvelope(runtime.EnvelopeConfig{Policy: runtime.PolicyShedSoft}), runtime.WithSink(m))
	soft := app.SoftIDs()
	rng := rand.New(rand.NewSource(127))
	var res runtime.Result
	var overruns, extra, regressions, budget, sheds int64
	for i := 0; i < 200; i++ {
		sc := sim.MustSample(app, rng, rng.Intn(app.K()+1), nil)
		switch i % 4 {
		case 0:
			p := soft[rng.Intn(len(soft))]
			sc.Durations[p] = app.Proc(p).WCET + model.Time(1+rng.Intn(40))
		case 1:
			p := soft[rng.Intn(len(soft))]
			extraN := 1 + rng.Intn(2)
			sc.FaultsAt[p] += app.K() + extraN - sc.NFaults
			sc.NFaults = app.K() + extraN
		case 2:
			p := soft[rng.Intn(len(soft))]
			sc.Durations[p] = -model.Time(1 + rng.Intn(9))
		}
		if err := d.RunInto(&res, sc); err != nil {
			t.Fatal(err)
		}
		overruns += int64(countKind(res.Violations, runtime.WCETOverrun))
		extra += int64(countKind(res.Violations, runtime.ExtraFault))
		regressions += int64(countKind(res.Violations, runtime.TimeRegression))
		budget += int64(countKind(res.Violations, runtime.BudgetExhausted))
		if res.Degraded {
			sheds++
		}
	}
	if overruns == 0 || extra == 0 || regressions == 0 || sheds == 0 {
		t.Fatalf("vacuous mix: overruns=%d extra=%d regressions=%d sheds=%d", overruns, extra, regressions, sheds)
	}
	for _, c := range []struct {
		counter obs.Counter
		want    int64
	}{
		{obs.EnvelopeOverruns, overruns},
		{obs.EnvelopeExtraFaults, extra},
		{obs.EnvelopeTimeRegressions, regressions},
		{obs.EnvelopeBudgetExhausted, budget},
		{obs.EnvelopeSheds, sheds},
	} {
		if got := m.Counter(c.counter); got != c.want {
			t.Errorf("%s = %d, want %d", c.counter.Name(), got, c.want)
		}
	}
}
