// Package runtime is the online half of the scheduler: it executes
// operation cycles against a synthesised quasi-static tree. The paper's
// premise (§1, §5) is that all expensive analysis happens off-line and the
// online scheduler only "would have to switch to the corresponding
// schedule" from observed completion times and faults — this package is
// that fast path, factored out of the simulation layer so simulators,
// baselines and a future embedded target all share one interpreter.
//
// The central type is Dispatcher, a compiled form of a core.Tree. The
// arena tree already stores each node's arcs contiguously in the canonical
// (Pos, Kind, Gain-descending) order; NewDispatcher additionally resolves
// the overlaps between same-group guards (higher gain wins) into disjoint,
// Lo-sorted segments, so a runtime switch decision is two binary searches
// — one for the (position, outcome-kind) group, one for the completion
// time — with no per-arc gain comparison left at run time.
//
// A Dispatcher is immutable after construction and safe for concurrent
// use. The execution entry points are allocation-free on the hot path:
// RunInto reuses the caller's Result buffers and per-cycle scratch
// (fault budgets, stale statuses, stale-value coefficients α) comes from
// an internal sync.Pool. Monte-Carlo evaluation in internal/sim drives one
// shared Dispatcher from many goroutines; see BenchmarkDispatch for the
// per-cycle cost.
package runtime
