//go:build race

package runtime_test

// See race_off_test.go.
const raceEnabled = true
