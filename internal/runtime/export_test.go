package runtime

import (
	"ftsched/internal/core"
	"ftsched/internal/model"
)

// Next exposes the compiled switch resolution so the external tests can
// check it against core.Tree.Next point for point.
func (d *Dispatcher) Next(id core.NodeID, pos int, tc model.Time, outcome core.EntryOutcome) core.NodeID {
	return d.next(id, pos, tc, outcome, nil)
}

// Segments returns the compiled segment count, for the compile-shape tests.
func (d *Dispatcher) Segments() int { return len(d.segs) }

// CorruptSegments redirects every compiled segment to the given node,
// simulating post-construction corruption of the dispatch table so the
// degradation tests can exercise the mid-cycle root fallback.
func (d *Dispatcher) CorruptSegments(child core.NodeID) {
	for i := range d.segs {
		d.segs[i].child = child
	}
}
