package runtime

import (
	"ftsched/internal/core"
	"ftsched/internal/model"
)

// Next exposes the compiled switch resolution so the external tests can
// check it against core.Tree.Next point for point.
func (d *Dispatcher) Next(id core.NodeID, pos int, tc model.Time, outcome core.EntryOutcome) core.NodeID {
	return d.next(id, pos, tc, outcome, nil)
}

// Segments returns the compiled segment count, for the compile-shape tests.
func (d *Dispatcher) Segments() int { return len(d.segs) }
