package runtime_test

import (
	"errors"
	"math/rand"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
)

// TestNewDispatcherRejectsMalformedTrees: every class of arena corruption
// must surface as a *MalformedTreeError at construction — never a panic,
// never a silently mis-dispatching table.
func TestNewDispatcherRejectsMalformedTrees(t *testing.T) {
	app := apps.Fig1()
	fresh := func(t *testing.T) *core.Tree {
		tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	for _, tc := range []struct {
		name    string
		corrupt func(tree *core.Tree)
	}{
		{"nil tree", func(tree *core.Tree) { *tree = core.Tree{} }},
		{"no nodes", func(tree *core.Tree) { tree.Nodes = nil }},
		{"nil root schedule", func(tree *core.Tree) { tree.Nodes[0].Schedule = nil }},
		{"nil child schedule", func(tree *core.Tree) { tree.Nodes[len(tree.Nodes)-1].Schedule = nil }},
		{"entry proc out of range", func(tree *core.Tree) {
			tree.Nodes[0].Schedule.Entries[0].Proc = model.ProcessID(app.N())
		}},
		{"negative recovery budget", func(tree *core.Tree) {
			tree.Nodes[0].Schedule.Entries[0].Recoveries = -1
		}},
		{"arc range outside arena", func(tree *core.Tree) {
			tree.Nodes[0].ArcEnd = int32(len(tree.Arcs) + 3)
		}},
		{"inverted arc range", func(tree *core.Tree) {
			tree.Nodes[0].ArcStart, tree.Nodes[0].ArcEnd = 2, 0
		}},
		{"dangling arc child", func(tree *core.Tree) {
			tree.Arcs[0].Child = core.NodeID(len(tree.Nodes))
		}},
		{"negative arc child", func(tree *core.Tree) { tree.Arcs[0].Child = -7 }},
		{"arc position out of range", func(tree *core.Tree) {
			tree.Arcs[0].Pos = len(tree.Nodes[0].Schedule.Entries)
		}},
		{"parent out of range", func(tree *core.Tree) {
			tree.Nodes[1].Parent = core.NodeID(len(tree.Nodes))
		}},
		{"cyclic parent chain", func(tree *core.Tree) { tree.Nodes[1].Parent = 1 }},
		{"dropped marker out of range", func(tree *core.Tree) {
			tree.Nodes[1].DroppedOnFault = model.ProcessID(app.N() + 1)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tree := fresh(t)
			if len(tree.Nodes) < 2 || len(tree.Arcs) == 0 {
				t.Fatalf("fixture tree too small for corruption cases: %d nodes, %d arcs",
					len(tree.Nodes), len(tree.Arcs))
			}
			tc.corrupt(tree)
			d, err := runtime.NewDispatcher(tree)
			var mte *runtime.MalformedTreeError
			if !errors.As(err, &mte) {
				t.Fatalf("err = %v (dispatcher %v), want *MalformedTreeError", err, d != nil)
			}
			if mte.Error() == "" || errors.Unwrap(mte) == nil {
				t.Errorf("error carries no detail: %+v", mte)
			}
		})
	}
}

// TestDispatcherRootFallback: when the compiled table is corrupted after
// construction (simulated via the CorruptSegments test hook), a mid-cycle
// switch to an unusable node must fall back to the root f-schedule,
// counting the event on the Result and the sink instead of crashing — and
// the hard guarantee of the root schedule must still hold.
func TestDispatcherRootFallback(t *testing.T) {
	app := apps.Fig1()
	tree, err := core.FTQS(app, core.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	d := runtime.MustNewDispatcher(tree, runtime.WithSink(m))
	d.CorruptSegments(core.NodeID(len(tree.Nodes) + 5)) // every switch target out of range

	rng := rand.New(rand.NewSource(7))
	fellBack := 0
	for i := 0; i < 200; i++ {
		sc := sim.MustSample(app, rng, i%(app.K()+1), nil)
		res, err := d.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fallbacks > 0 {
			fellBack += res.Fallbacks
			if res.FinalNode != 0 {
				t.Errorf("scenario %d: fallback ended on node %d, want root", i, res.FinalNode)
			}
		}
		if len(res.HardViolations) != 0 {
			t.Errorf("scenario %d: hard violation despite root fallback", i)
		}
	}
	if fellBack == 0 {
		t.Fatal("corrupted table never triggered the root fallback")
	}
	if got := m.Counter(obs.DispatchGuardFallbacks); got != int64(fellBack) {
		t.Errorf("DispatchGuardFallbacks = %d, want %d", got, fellBack)
	}
}
