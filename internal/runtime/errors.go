package runtime

import (
	"fmt"
)

// MalformedTreeError reports that a tree failed the structural audit at
// Dispatcher construction (or that compilation produced an inconsistent
// dispatch table, which indicates memory corruption or a compiler bug).
// It wraps the underlying *core.VerifyError (or description) so callers
// can inspect individual findings with errors.As.
type MalformedTreeError struct {
	// Err is the underlying audit failure.
	Err error
}

// Error implements error.
func (e *MalformedTreeError) Error() string {
	return "runtime: malformed tree: " + e.Err.Error()
}

// Unwrap returns the underlying audit failure.
func (e *MalformedTreeError) Unwrap() error { return e.Err }

// ScenarioSizeError reports a scenario whose per-process slices do not
// match the application the dispatcher was compiled for. It is the only
// scenario validation the run loop performs — the O(1) length check that
// makes out-of-range indexing impossible; semantic validation (durations
// within [BCET,WCET], fault totals) is Scenario.Validate's job and is
// deliberately not on the per-cycle hot path.
type ScenarioSizeError struct {
	// Durations and Faults are the offered slice lengths; Want is the
	// application's process count.
	Durations, Faults, Want int
}

// Error implements error.
func (e *ScenarioSizeError) Error() string {
	return fmt.Sprintf("runtime: scenario sized for %d durations / %d fault slots, application has %d processes",
		e.Durations, e.Faults, e.Want)
}
