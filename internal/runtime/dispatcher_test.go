package runtime_test

import (
	"math/rand"
	"sync"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/sim"
)

// synthesize builds a quasi-static tree or fails the test.
func synthesize(t testing.TB, app *model.Application, m int) *core.Tree {
	t.Helper()
	tree, err := core.FTQS(app, core.FTQSOptions{M: m})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// probeTimes collects the interesting completion times of a node: every
// guard boundary and its neighbours, plus a spread of random points.
func probeTimes(tree *core.Tree, id core.NodeID, rng *rand.Rand) []model.Time {
	period := tree.App.Period()
	times := []model.Time{0, period, period + 1}
	for _, a := range tree.NodeArcs(id) {
		times = append(times, a.Lo-1, a.Lo, a.Lo+1, a.Hi-1, a.Hi, a.Hi+1)
	}
	for i := 0; i < 16; i++ {
		times = append(times, model.Time(rng.Int63n(int64(period)+1)))
	}
	return times
}

// TestDispatcherMatchesTreeNext: the compiled disjoint-segment lookup must
// resolve every (node, position, completion time, outcome) probe to the
// same child as the interpretive core.Tree.Next — including guard
// boundaries, overlap regions decided by gain, and times no guard covers.
func TestDispatcherMatchesTreeNext(t *testing.T) {
	outcomes := []core.EntryOutcome{core.CompletedOK, core.CompletedRecovered, core.DroppedByFault}
	for _, tc := range []struct {
		app *model.Application
		m   int
	}{
		{apps.Fig1(), 8},
		{apps.Fig8(), 20},
		{apps.CruiseController(), 24},
	} {
		tree := synthesize(t, tc.app, tc.m)
		d := runtime.MustNewDispatcher(tree)
		rng := rand.New(rand.NewSource(3))
		for id := range tree.Nodes {
			nid := core.NodeID(id)
			n := &tree.Nodes[id]
			for pos := 0; pos < len(n.Schedule.Entries); pos++ {
				for _, at := range probeTimes(tree, nid, rng) {
					for _, out := range outcomes {
						want := tree.Next(nid, pos, at, out)
						got := d.Next(nid, pos, at, out)
						if got != want {
							t.Fatalf("%s: node %d pos %d t=%d outcome %d: dispatcher -> %d, tree -> %d",
								tc.app.Name(), id, pos, at, out, got, want)
						}
					}
				}
			}
		}
	}
}

// TestDispatcherTrimmedGuards: arcs disabled by trimming (Lo > Hi) must be
// invisible to the compiled lookup, exactly as they are to Tree.Next.
func TestDispatcherTrimmedGuards(t *testing.T) {
	tree := synthesize(t, apps.Fig8(), 16)
	// Disable every other arc the way sim.Trim does.
	for i := range tree.Arcs {
		if i%2 == 1 {
			tree.Arcs[i].Lo, tree.Arcs[i].Hi = 1, 0
		}
	}
	d := runtime.MustNewDispatcher(tree)
	rng := rand.New(rand.NewSource(5))
	for id := range tree.Nodes {
		nid := core.NodeID(id)
		n := &tree.Nodes[id]
		for pos := 0; pos < len(n.Schedule.Entries); pos++ {
			for _, at := range probeTimes(tree, nid, rng) {
				for _, out := range []core.EntryOutcome{core.CompletedOK, core.CompletedRecovered, core.DroppedByFault} {
					if got, want := d.Next(nid, pos, at, out), tree.Next(nid, pos, at, out); got != want {
						t.Fatalf("node %d pos %d t=%d: dispatcher -> %d, tree -> %d", id, pos, at, got, want)
					}
				}
			}
		}
	}
}

// mustRun executes a scenario, failing the test on the (impossible for
// well-sized scenarios) typed errors.
func mustRun(t testing.TB, d *runtime.Dispatcher, sc runtime.Scenario) runtime.Result {
	t.Helper()
	res, err := d.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// resultsEqual compares results treating nil and empty slices alike (Run
// returns nil slices where a reused RunInto result holds empty ones).
func resultsEqual(a, b *runtime.Result) bool {
	if a.Utility != b.Utility || a.Makespan != b.Makespan ||
		a.Switches != b.Switches || a.FinalNode != b.FinalNode ||
		a.FaultsConsumed != b.FaultsConsumed || a.Recoveries != b.Recoveries {
		return false
	}
	if len(a.Outcomes) != len(b.Outcomes) || len(a.HardViolations) != len(b.HardViolations) {
		return false
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			return false
		}
		if a.Outcomes[i] == runtime.Completed && a.CompletionTimes[i] != b.CompletionTimes[i] {
			return false
		}
	}
	for i := range a.HardViolations {
		if a.HardViolations[i] != b.HardViolations[i] {
			return false
		}
	}
	return true
}

// TestRunIntoMatchesRun: reusing one Result across scenarios must leave no
// residue — every call reports exactly what a fresh Run would.
func TestRunIntoMatchesRun(t *testing.T) {
	app := apps.CruiseController()
	tree := synthesize(t, app, 20)
	d := runtime.MustNewDispatcher(tree)
	rng := rand.New(rand.NewSource(11))
	var reused runtime.Result
	for i := 0; i < 500; i++ {
		sc := sim.MustSample(app, rng, i%(app.K()+1), nil)
		d.RunInto(&reused, sc)
		fresh := mustRun(t, d, sc)
		if !resultsEqual(&reused, &fresh) {
			t.Fatalf("scenario %d: RunInto %+v != Run %+v", i, reused, fresh)
		}
	}
}

// TestRunTraceMatchesRun: tracing must not perturb the simulation, and the
// event stream must be time-ordered.
func TestRunTraceMatchesRun(t *testing.T) {
	app := apps.Fig8()
	tree := synthesize(t, app, 16)
	d := runtime.MustNewDispatcher(tree)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		sc := sim.MustSample(app, rng, i%(app.K()+1), nil)
		plain := mustRun(t, d, sc)
		traced, events, err := d.RunTrace(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(&plain, &traced) {
			t.Fatalf("scenario %d: tracing changed the result", i)
		}
		for j := 1; j < len(events); j++ {
			if events[j].At < events[j-1].At {
				t.Fatalf("scenario %d: events out of order at %d: %+v after %+v",
					i, j, events[j], events[j-1])
			}
		}
	}
}

// TestDispatcherConcurrent: one Dispatcher shared by many goroutines (the
// Monte-Carlo pattern) must stay correct — run with -race.
func TestDispatcherConcurrent(t *testing.T) {
	app := apps.CruiseController()
	tree := synthesize(t, app, 20)
	d := runtime.MustNewDispatcher(tree)

	const workers, perWorker = 8, 50
	scenarios := make([]sim.Scenario, workers*perWorker)
	want := make([]runtime.Result, len(scenarios))
	rng := rand.New(rand.NewSource(23))
	for i := range scenarios {
		scenarios[i] = sim.MustSample(app, rng, i%(app.K()+1), nil)
		want[i] = mustRun(t, d, scenarios[i])
	}

	var wg sync.WaitGroup
	errs := make(chan int, len(scenarios))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var res runtime.Result
			for i := w; i < len(scenarios); i += workers {
				d.RunInto(&res, scenarios[i])
				if !resultsEqual(&res, &want[i]) {
					errs <- i
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for i := range errs {
		t.Errorf("scenario %d diverged under concurrency", i)
	}
}

// TestRunIntoAllocFree: the acceptance criterion of the refactor — the
// steady-state dispatch loop must not allocate at all.
func TestRunIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	app := apps.CruiseController()
	tree := synthesize(t, app, 20)
	d := runtime.MustNewDispatcher(tree)
	rng := rand.New(rand.NewSource(29))
	sc := sim.MustSample(app, rng, 2, nil)
	var res runtime.Result
	d.RunInto(&res, sc) // warm up the result buffers and the cycle pool
	allocs := testing.AllocsPerRun(200, func() {
		d.RunInto(&res, sc)
	})
	if allocs != 0 {
		t.Errorf("RunInto allocates %.2f times per cycle, want 0", allocs)
	}
}

// TestRunIntoAllocFreeWithSinks: instrumentation must not cost allocations
// either — neither the disabled path (nil / NopSink) nor a live Metrics
// collector may allocate per cycle.
func TestRunIntoAllocFreeWithSinks(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	app := apps.CruiseController()
	tree := synthesize(t, app, 20)
	rng := rand.New(rand.NewSource(29))
	sc := sim.MustSample(app, rng, 2, nil)
	for _, tc := range []struct {
		name string
		sink obs.Sink
	}{
		{"nop", obs.NopSink{}},
		{"live", obs.NewMetrics()},
	} {
		d := runtime.MustNewDispatcher(tree, runtime.WithSink(tc.sink))
		var res runtime.Result
		d.RunInto(&res, sc)
		allocs := testing.AllocsPerRun(200, func() {
			d.RunInto(&res, sc)
		})
		if allocs != 0 {
			t.Errorf("%s sink: RunInto allocates %.2f times per cycle, want 0", tc.name, allocs)
		}
	}
}

// TestDispatcherSinkEvents: a live sink must see consistent dispatch events
// — cycle/switch/fault counters matching the returned Results, a guard
// depth sample per lookup, and a hard-slack sample per completed (or never
// run) hard process — and must not perturb the results themselves.
func TestDispatcherSinkEvents(t *testing.T) {
	app := apps.CruiseController()
	tree := synthesize(t, app, 20)
	plain := runtime.MustNewDispatcher(tree)
	m := obs.NewMetrics()
	d := runtime.MustNewDispatcher(tree, runtime.WithSink(m))
	if d.Sink() != m {
		t.Fatal("Sink() does not return the installed sink")
	}

	rng := rand.New(rand.NewSource(41))
	const cycles = 300
	var switches, recoveries, abandoned, hardDone int64
	for i := 0; i < cycles; i++ {
		sc := sim.MustSample(app, rng, i%(app.K()+1), nil)
		got := mustRun(t, d, sc)
		want := mustRun(t, plain, sc)
		if !resultsEqual(&got, &want) {
			t.Fatalf("scenario %d: sink changed the result", i)
		}
		switches += int64(got.Switches)
		recoveries += int64(got.Recoveries)
		for _, o := range got.Outcomes {
			if o == runtime.AbandonedByFault {
				abandoned++
			}
		}
		for _, h := range tree.App.HardIDs() {
			if got.Outcomes[h] == runtime.Completed {
				hardDone++
			}
		}
	}

	for _, c := range []struct {
		counter obs.Counter
		want    int64
	}{
		{obs.DispatchCycles, cycles},
		{obs.DispatchSwitches, switches},
		{obs.DispatchFaultsAbsorbed, recoveries},
		{obs.DispatchFaultsAbandoned, abandoned},
	} {
		if got := m.Counter(c.counter); got != c.want {
			t.Errorf("%s = %d, want %d", c.counter.Name(), got, c.want)
		}
	}
	s := m.Snapshot()
	if got := s.Histograms[obs.DispatchHardSlack.Name()].Count; got != hardDone {
		t.Errorf("hard-slack samples = %d, want %d (one per completed hard process)", got, hardDone)
	}
	if got := s.Histograms[obs.DispatchSwitchNode.Name()].Count; got != switches {
		t.Errorf("switch-node samples = %d, want %d", got, switches)
	}
	if s.Histograms[obs.DispatchGuardDepth.Name()].Count == 0 {
		t.Error("no guard-depth samples recorded")
	}
}

// TestScenarioValidate: the moved Scenario type keeps rejecting malformed
// hand-built scenarios.
func TestScenarioValidate(t *testing.T) {
	app := apps.Fig1()
	rng := rand.New(rand.NewSource(31))
	sc := sim.MustSample(app, rng, 1, nil)
	if err := sc.Validate(app); err != nil {
		t.Fatalf("sampled scenario invalid: %v", err)
	}
	bad := sc
	bad.NFaults = sc.NFaults + 1
	if err := bad.Validate(app); err == nil {
		t.Error("inconsistent NFaults accepted")
	}
	short := runtime.Scenario{Durations: sc.Durations[:1], FaultsAt: sc.FaultsAt}
	if err := short.Validate(app); err == nil {
		t.Error("short duration vector accepted")
	}
}
