package runtime_test

import (
	"math/rand"
	"testing"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/runtime"
	"ftsched/internal/schedule"
	"ftsched/internal/sim"
)

// lpHP is the two-core test platform: a unit low-power core and a 2x
// high-performance core.
func lpHP(t testing.TB) *model.Platform {
	t.Helper()
	return model.MustNewPlatform(
		model.Core{Name: "lp", Speed: 1, PowerActive: 1, PowerIdle: 0.05},
		model.Core{Name: "hp", Speed: 2, PowerActive: 3, PowerIdle: 0.15},
	)
}

// mappedFixture builds a deterministic three-process application (A and C
// on the LP core, B on the HP core, all recoveries on HP) wrapped as a
// static one-node tree, so every dispatch step is hand-computable.
func mappedFixture(t testing.TB) (*core.Tree, *model.Application) {
	t.Helper()
	a := model.NewApplication("mapped", 1000, 1, 10)
	pa := a.AddProcess(model.Process{Name: "A", Kind: model.Hard, BCET: 40, AET: 40, WCET: 40, Deadline: 900})
	pb := a.AddProcess(model.Process{Name: "B", Kind: model.Hard, BCET: 60, AET: 60, WCET: 60, Deadline: 900})
	pc := a.AddProcess(model.Process{Name: "C", Kind: model.Hard, BCET: 50, AET: 50, WCET: 50, Deadline: 900})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	app, err := a.WithPlatform(lpHP(t), model.Mapping{
		Primary:  []model.CoreID{0, 1, 0},
		Recovery: []model.CoreID{1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &schedule.FSchedule{Entries: []schedule.Entry{
		{Proc: pa, Recoveries: 1}, {Proc: pb, Recoveries: 1}, {Proc: pc, Recoveries: 1},
	}}
	return sim.StaticTree(app, s), app
}

// TestDispatchMappedTimeline: hand-computed mapped dispatch, fault-free.
// A on lp [0,40], B on hp [0,30] (scaled), C on lp [40,90]; the makespan is
// the cross-core maximum, and the per-core energy split follows the busy
// and idle times exactly.
func TestDispatchMappedTimeline(t *testing.T) {
	tree, _ := mappedFixture(t)
	d := runtime.MustNewDispatcher(tree)
	res, err := d.Run(runtime.Scenario{
		Durations: []model.Time{40, 60, 50},
		FaultsAt:  []int{0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Time{40, 30, 90}
	for i, w := range want {
		if res.CompletionTimes[i] != w {
			t.Errorf("completion[%d] = %d, want %d", i, res.CompletionTimes[i], w)
		}
	}
	if res.Makespan != 90 {
		t.Errorf("makespan = %d, want 90", res.Makespan)
	}
	// busy lp = 90, hp = 30; idle lp = 910, hp = 970.
	if res.CoreBusy[0] != 90 || res.CoreBusy[1] != 30 {
		t.Errorf("core busy = %v, want [90 30]", res.CoreBusy)
	}
	wantActive := 90.0*1 + 30.0*3       // 180
	wantIdle := 910.0*0.05 + 970.0*0.15 // 191
	if res.EnergyActive != wantActive || res.EnergyIdle != wantIdle ||
		res.Energy != wantActive+wantIdle {
		t.Errorf("energy = %v (active %v idle %v), want %v (%v + %v)",
			res.Energy, res.EnergyActive, res.EnergyIdle, wantActive+wantIdle, wantActive, wantIdle)
	}
	wantCore := []float64{90*1 + 910*0.05, 30*3 + 970*0.15}
	for c, w := range wantCore {
		if res.CoreEnergy[c] != w {
			t.Errorf("core %d energy = %v, want %v", c, res.CoreEnergy[c], w)
		}
	}
}

// TestDispatchMappedRecovery: a fault on A re-executes on the HP core:
// 40 (lp attempt) + 10 (µ, charged to hp) + 20 (scaled re-execution) = 70.
// B then queues behind the recovery on hp.
func TestDispatchMappedRecovery(t *testing.T) {
	tree, _ := mappedFixture(t)
	d := runtime.MustNewDispatcher(tree)
	res, err := d.Run(runtime.Scenario{
		Durations: []model.Time{40, 60, 50},
		FaultsAt:  []int{1, 0, 0},
		NFaults:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []model.Time{70, 100, 90}
	for i, w := range want {
		if res.CompletionTimes[i] != w {
			t.Errorf("completion[%d] = %d, want %d", i, res.CompletionTimes[i], w)
		}
	}
	if res.Recoveries != 1 || res.Makespan != 100 {
		t.Errorf("recoveries/makespan = %d/%d, want 1/100", res.Recoveries, res.Makespan)
	}
	// busy lp = 40 + 50 = 90; busy hp = 10 (µ) + 20 (re-exec) + 30 (B) = 60.
	if res.CoreBusy[0] != 90 || res.CoreBusy[1] != 60 {
		t.Errorf("core busy = %v, want [90 60]", res.CoreBusy)
	}
	wantActive := 90.0*1 + 60.0*3       // 270
	wantIdle := 910.0*0.05 + 940.0*0.15 // 186.5
	if res.Energy != wantActive+wantIdle {
		t.Errorf("energy = %v, want %v", res.Energy, wantActive+wantIdle)
	}
}

// TestDispatchMappedAllocFree: the 0 allocs/cycle contract must survive the
// platform refactor on mapped trees too (the acceptance gate).
func TestDispatchMappedAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc counts are meaningless")
	}
	base := apps.CruiseController()
	plat := lpHP(t)
	app, err := base.WithPlatform(plat, model.BiasedMapping(base, plat))
	if err != nil {
		t.Fatal(err)
	}
	tree := synthesize(t, app, 20)
	for _, tc := range []struct {
		name string
		sink obs.Sink
	}{
		{"plain", nil},
		{"live", obs.NewMetrics()},
	} {
		d := runtime.MustNewDispatcher(tree, runtime.WithSink(tc.sink))
		rng := rand.New(rand.NewSource(29))
		sc := sim.MustSample(app, rng, 2, nil)
		var res runtime.Result
		d.RunInto(&res, sc) // warm up the result buffers and the cycle pool
		allocs := testing.AllocsPerRun(200, func() {
			d.RunInto(&res, sc)
		})
		if allocs != 0 {
			t.Errorf("%s: mapped RunInto allocates %.2f times per cycle, want 0", tc.name, allocs)
		}
	}
}

// TestDispatchMappedHonoursDeadlines: on a fully mapped paper fixture the
// dispatcher must keep every hard deadline across random in-model
// scenarios, and the canonical single-core run of the same scenarios must
// be untouched by the refactor (energy == busy time, one core).
func TestDispatchMappedHonoursDeadlines(t *testing.T) {
	base := apps.Fig8()
	plat := lpHP(t)
	app, err := base.WithPlatform(plat, model.BiasedMapping(base, plat))
	if err != nil {
		t.Fatal(err)
	}
	tree := synthesize(t, app, 16)
	d := runtime.MustNewDispatcher(tree)
	single := runtime.MustNewDispatcher(synthesize(t, base, 16))
	rng := rand.New(rand.NewSource(17))
	var res, sres runtime.Result
	for i := 0; i < 500; i++ {
		sc := sim.MustSample(base, rng, min(1, base.K()), nil)
		if err := d.RunInto(&res, sc); err != nil {
			t.Fatal(err)
		}
		if len(res.HardViolations) != 0 {
			t.Fatalf("scenario %d: hard violations %v on the mapped tree", i, res.HardViolations)
		}
		if err := single.RunInto(&sres, sc); err != nil {
			t.Fatal(err)
		}
		if sres.EnergyIdle != 0 || sres.Energy != float64(sres.CoreBusy[0]) {
			t.Fatalf("scenario %d: canonical energy %v != busy %v", i, sres.Energy, sres.CoreBusy[0])
		}
	}
}
