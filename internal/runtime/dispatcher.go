package runtime

import (
	"fmt"
	"math"
	"sync"

	"ftsched/internal/core"
	"ftsched/internal/model"
	"ftsched/internal/obs"
	"ftsched/internal/utility"
)

// segment is one disjoint piece of a compiled guard group: completion
// times in [lo, hi] switch to child. Within a group, segments are sorted
// by lo and never overlap.
type segment struct {
	lo, hi model.Time
	child  core.NodeID
}

// group is the compiled dispatch entry for one (position, kind) pair of a
// node: the slice [segStart, segEnd) of the segment arena.
type group struct {
	pos              int32
	kind             core.ArcKind
	segStart, segEnd int32
}

// groupRange delimits one node's groups in the group arena.
type groupRange struct {
	start, end int32
}

// depthBuckets caps the guard binary-search depths tracked per cycle; the
// last slot absorbs deeper searches (unreachable below 2^14 dispatch
// groups per node).
const depthBuckets = 16

// cycleBufs is the per-cycle scratch the interpreter needs beyond the
// caller's Result: fault budgets, stale statuses and α coefficients, plus
// the per-cycle guard-depth tally a live sink is flushed from. They are
// pooled so concurrent cycles on one Dispatcher stay allocation-free.
type cycleBufs struct {
	faultsLeft []int
	status     []utility.StaleStatus
	alpha      []float64
	// ready[c] is core c's next free time; busy[c] accumulates its active
	// time (attempts plus recovery overheads). Sized to the platform's
	// core count; the single-core fast path uses busy[0] only.
	ready, busy []model.Time
	// depthCounts[d] counts guard lookups that binary-searched d steps
	// this cycle; batched here and flushed with ObserveN once per cycle so
	// instrumentation costs O(distinct depths), not O(lookups), in atomic
	// operations.
	depthCounts [depthBuckets]int32
}

// recordDepth tallies one guard lookup of the given search depth.
func (b *cycleBufs) recordDepth(depth int) {
	if depth >= depthBuckets {
		depth = depthBuckets - 1
	}
	b.depthCounts[depth]++
}

// Dispatcher is the compiled, immutable online-scheduler state for one
// quasi-static tree. Construction resolves the tree's overlapping guard
// arcs into disjoint segments and caches the application topology the
// utility accounting needs every cycle; afterwards executing a scenario
// performs no allocation (with RunInto) and no linear arc scan. A
// Dispatcher is safe for concurrent use by multiple goroutines.
type Dispatcher struct {
	tree *core.Tree
	app  *model.Application

	nodeGroups []groupRange
	groups     []group
	segs       []segment

	// procs caches the process table; order/preds cache the topology in
	// the form utility.CoefficientsInto consumes (validated once during
	// construction via StaleCoefficients).
	procs   []model.Process
	order   []int
	preds   [][]int
	hardIDs []model.ProcessID

	// sink receives dispatch events; nil when observability is disabled
	// (the default, and what obs.NopSink normalises to), so the hot path
	// pays one branch per cycle.
	sink obs.Sink

	// Envelope configuration (WithEnvelope): when envelope is set, the run
	// loop detects out-of-model events and applies envPolicy at the first
	// one. emergency holds the precomputed hard-only suffix schedules
	// PolicyShedSoft falls back to; k caches the application fault bound.
	envelope  bool
	envPolicy DegradePolicy
	envClamp  bool
	emergency *core.EmergencyPlan
	k         int

	// Platform caches. multi is false on a single-core speed-1 platform,
	// and the hot loop then never touches the per-core state: the scalar
	// clock of the paper's model is the fast path. primCore/recCore map
	// each process to the core of its first attempt / its re-executions;
	// speed, powerA and powerI mirror the platform's core parameters.
	multi    bool
	ncores   int
	primCore []int32
	recCore  []int32
	speed    []float64
	powerA   []float64
	powerI   []float64
	period   model.Time

	// Recovery-model caches. rec holds the application's recovery model;
	// recOverheadOf[p] is the fixed per-fault overhead of process p under
	// it (µ for re-execution, the restart latency, or the rollback cost),
	// precomputed so the attempt loop pays one slice index. checkpointing
	// short-circuits the per-attempt segment arithmetic for the two
	// models that do not need it.
	rec           model.RecoveryModel
	checkpointing bool
	recOverheadOf []model.Time

	bufs sync.Pool
}

// scaleOn converts a nominal duration to wall-clock time on one core,
// matching model.Platform.Scale exactly (identity at speed 1).
func (d *Dispatcher) scaleOn(c int32, t model.Time) model.Time {
	s := d.speed[c]
	if s == 1 || t <= 0 {
		return t
	}
	return model.Time(math.Ceil(float64(t) / s))
}

// Option configures a Dispatcher at construction.
type Option func(*Dispatcher)

// WithSink routes the dispatcher's events (cycles, switches, guard search
// depths, absorbed/abandoned faults, hard-deadline slack) to s. A nil
// sink or obs.NopSink leaves instrumentation disabled; RunInto stays at 0
// allocations per cycle either way.
func WithSink(s obs.Sink) Option {
	return func(d *Dispatcher) {
		if obs.Live(s) {
			d.sink = s
		} else {
			d.sink = nil
		}
	}
}

// Sink returns the sink events are routed to (nil when disabled).
func (d *Dispatcher) Sink() obs.Sink { return d.sink }

// NewDispatcher compiles a tree. The tree must stay unmodified while the
// Dispatcher is in use (trimming recompiles after each mutation).
//
// The tree is audited with core.VerifyStructure before compilation and the
// compiled dispatch table is audited afterwards; a malformed tree
// (out-of-range node IDs, missing schedules, cyclic parent links,
// inconsistent guard segments) yields a *MalformedTreeError — never a
// panic — so trees from untrusted storage degrade into a typed error.
// Note this is the structural audit only: run core.VerifyTree for the
// full hard-deadline safety audit, or internal/certify for exhaustive
// certification against the compiled dispatcher itself.
func NewDispatcher(tree *core.Tree, opts ...Option) (*Dispatcher, error) {
	if err := core.VerifyStructure(tree); err != nil {
		return nil, &MalformedTreeError{Err: err}
	}
	app := tree.App
	n := app.N()
	d := &Dispatcher{
		tree:    tree,
		app:     app,
		procs:   make([]model.Process, n),
		order:   make([]int, n),
		preds:   make([][]int, n),
		hardIDs: app.HardIDs(),
		k:       app.K(),
	}
	for _, opt := range opts {
		opt(d)
	}
	if d.envelope {
		if d.envPolicy < PolicyStrict || d.envPolicy > PolicyBestEffort {
			return nil, fmt.Errorf("runtime: unknown DegradePolicy %d", int(d.envPolicy))
		}
		if d.envPolicy == PolicyShedSoft {
			d.emergency = core.BuildEmergencyPlan(tree)
		}
	}
	for id := 0; id < n; id++ {
		d.procs[id] = app.Proc(model.ProcessID(id))
	}
	for i, id := range app.Topo() {
		d.order[i] = int(id)
	}
	for id := 0; id < n; id++ {
		ps := app.Preds(model.ProcessID(id))
		row := make([]int, len(ps))
		for i, p := range ps {
			row[i] = int(p)
		}
		d.preds[id] = row
	}
	plat := app.Platform()
	d.ncores = plat.NCores()
	d.multi = !plat.IsDefault()
	d.period = app.Period()
	d.primCore = make([]int32, n)
	d.recCore = make([]int32, n)
	for id := 0; id < n; id++ {
		d.primCore[id] = int32(app.CoreOf(model.ProcessID(id)))
		d.recCore[id] = int32(app.RecoveryCoreOf(model.ProcessID(id)))
	}
	d.speed = make([]float64, d.ncores)
	d.powerA = make([]float64, d.ncores)
	d.powerI = make([]float64, d.ncores)
	for c := 0; c < d.ncores; c++ {
		cc := plat.Core(model.CoreID(c))
		d.speed[c] = cc.Speed
		d.powerA[c] = cc.PowerActive
		d.powerI[c] = cc.PowerIdle
	}
	d.rec = app.Recovery()
	if err := d.rec.Validate(); err != nil {
		return nil, &MalformedTreeError{Err: err}
	}
	d.checkpointing = d.rec.Kind == model.RecoverCheckpoint
	d.recOverheadOf = make([]model.Time, n)
	for id := 0; id < n; id++ {
		d.recOverheadOf[id] = app.RecoveryOverhead(model.ProcessID(id))
	}
	ncores := d.ncores
	d.bufs.New = func() any {
		return &cycleBufs{
			faultsLeft: make([]int, n),
			status:     make([]utility.StaleStatus, n),
			alpha:      make([]float64, n),
			ready:      make([]model.Time, ncores),
			busy:       make([]model.Time, ncores),
		}
	}
	d.compile()
	if err := d.auditSegments(); err != nil {
		return nil, &MalformedTreeError{Err: err}
	}
	return d, nil
}

// MustNewDispatcher is NewDispatcher for trees known to be well-formed
// (freshly synthesised, already verified); it panics on a malformed tree.
func MustNewDispatcher(tree *core.Tree, opts ...Option) *Dispatcher {
	d, err := NewDispatcher(tree, opts...)
	if err != nil {
		panic(err)
	}
	return d
}

// auditSegments re-checks the compiled dispatch table: within every group
// the segments must be sorted by lo, non-empty, disjoint, and switch to an
// in-range node carrying a schedule. compile is constructed to guarantee
// all of this, so a finding here means the compiler (or the memory under
// it) is broken — worth one linear pass at construction to turn a would-be
// silent misdispatch into a typed error.
func (d *Dispatcher) auditSegments() error {
	for gi := range d.groups {
		g := &d.groups[gi]
		if g.segStart < 0 || g.segEnd < g.segStart || int(g.segEnd) > len(d.segs) {
			return fmt.Errorf("dispatch group %d: segment range [%d,%d) outside arena of %d", gi, g.segStart, g.segEnd, len(d.segs))
		}
		segs := d.segs[g.segStart:g.segEnd]
		for si := range segs {
			s := &segs[si]
			if s.lo > s.hi {
				return fmt.Errorf("dispatch group %d: segment %d is empty [%d,%d]", gi, si, s.lo, s.hi)
			}
			if si > 0 && segs[si-1].hi >= s.lo {
				return fmt.Errorf("dispatch group %d: segments %d and %d overlap or are unsorted", gi, si-1, si)
			}
			if s.child < 0 || int(s.child) >= len(d.tree.Nodes) || d.tree.Nodes[s.child].Schedule == nil {
				return fmt.Errorf("dispatch group %d: segment %d switches to unusable node S%d", gi, si, s.child)
			}
		}
	}
	return nil
}

// compile flattens every node's arcs into disjoint dispatch segments. The
// arena already delivers arcs grouped by (Pos, Kind) with descending gain
// inside a group — the tree's canonical order — so within a group the
// first arc containing a completion time is the winner. compile makes that
// priority explicit: each arc claims only the parts of its guard no
// higher-gain arc of the same group already covers, producing disjoint
// segments that a binary search resolves with no gain comparison at run
// time. Arcs with an empty guard (Lo > Hi, trimming's disable marker) are
// skipped.
func (d *Dispatcher) compile() {
	t := d.tree
	d.nodeGroups = make([]groupRange, len(t.Nodes))
	d.groups = d.groups[:0]
	d.segs = d.segs[:0]
	var claimed []segment // coverage of the current group, sorted by lo
	for id := range t.Nodes {
		arcs := t.NodeArcs(core.NodeID(id))
		gStart := int32(len(d.groups))
		for i := 0; i < len(arcs); {
			j := i
			for j < len(arcs) && arcs[j].Pos == arcs[i].Pos && arcs[j].Kind == arcs[i].Kind {
				j++
			}
			segStart := int32(len(d.segs))
			claimed = claimed[:0]
			for _, a := range arcs[i:j] {
				if a.Lo > a.Hi {
					continue
				}
				claimed = claim(claimed, a.Lo, a.Hi, a.Child)
			}
			for _, s := range claimed {
				d.segs = append(d.segs, s)
			}
			if len(d.segs) > int(segStart) {
				d.groups = append(d.groups, group{
					pos:      int32(arcs[i].Pos),
					kind:     arcs[i].Kind,
					segStart: segStart,
					segEnd:   int32(len(d.segs)),
				})
			}
			i = j
		}
		d.nodeGroups[id] = groupRange{start: gStart, end: int32(len(d.groups))}
	}
}

// claim inserts [lo, hi]→child into the sorted disjoint coverage, keeping
// only the parts not already covered (earlier claims have priority).
func claim(cov []segment, lo, hi model.Time, child core.NodeID) []segment {
	// Walk the sorted coverage, collecting the uncovered gaps of [lo, hi].
	var pieces []segment
	cur := lo
	for _, s := range cov {
		if cur > hi {
			break
		}
		if s.hi < cur {
			continue
		}
		if s.lo > hi {
			break
		}
		if s.lo > cur {
			pieces = append(pieces, segment{lo: cur, hi: s.lo - 1, child: child})
		}
		cur = s.hi + 1
	}
	if cur <= hi {
		pieces = append(pieces, segment{lo: cur, hi: hi, child: child})
	}
	cov = append(cov, pieces...)
	// Insertion sort: groups are small and cov was sorted before.
	for i := 1; i < len(cov); i++ {
		for j := i; j > 0 && cov[j].lo < cov[j-1].lo; j-- {
			cov[j], cov[j-1] = cov[j-1], cov[j]
		}
	}
	return cov
}

// Tree returns the tree the dispatcher was compiled from.
func (d *Dispatcher) Tree() *core.Tree { return d.tree }

// next resolves the schedule switch after entry pos of node id completed
// (or was abandoned) at time tc — the compiled equivalent of
// core.Tree.Next, with identical semantics. With a live sink (bufs
// non-nil), every guard lookup's binary-search depth is tallied into the
// cycle scratch.
func (d *Dispatcher) next(id core.NodeID, pos int, tc model.Time, outcome core.EntryOutcome, bufs *cycleBufs) core.NodeID {
	switch outcome {
	case core.CompletedOK:
		if c := d.lookup(id, pos, core.Completion, tc, bufs); c != core.NoNode {
			return c
		}
	case core.CompletedRecovered:
		if c := d.lookup(id, pos, core.FaultRecovered, tc, bufs); c != core.NoNode {
			return c
		}
		if c := d.lookup(id, pos, core.Completion, tc, bufs); c != core.NoNode {
			return c
		}
	case core.DroppedByFault:
		if c := d.lookup(id, pos, core.FaultDropped, tc, bufs); c != core.NoNode {
			return c
		}
	}
	return id
}

// lookup binary-searches the node's compiled groups for (pos, kind), then
// the group's disjoint segments for tc. stats (nil when instrumentation is
// off) receives the total search depth.
func (d *Dispatcher) lookup(id core.NodeID, pos int, kind core.ArcKind, tc model.Time, stats *cycleBufs) core.NodeID {
	depth := 0
	gr := d.nodeGroups[id]
	gs := d.groups[gr.start:gr.end]
	lo, hi := 0, len(gs)
	for lo < hi {
		depth++
		mid := int(uint(lo+hi) >> 1)
		g := &gs[mid]
		if int(g.pos) < pos || (int(g.pos) == pos && g.kind < kind) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(gs) || int(gs[lo].pos) != pos || gs[lo].kind != kind {
		if stats != nil {
			stats.recordDepth(depth)
		}
		return core.NoNode
	}
	segs := d.segs[gs[lo].segStart:gs[lo].segEnd]
	a, b := 0, len(segs)
	for a < b {
		depth++
		mid := int(uint(a+b) >> 1)
		if segs[mid].hi < tc {
			a = mid + 1
		} else {
			b = mid
		}
	}
	if stats != nil {
		stats.recordDepth(depth)
	}
	if a < len(segs) && segs[a].lo <= tc && tc <= segs[a].hi {
		return segs[a].child
	}
	return core.NoNode
}

// checkScenario is the O(1) guard the run loop needs so scenario indexing
// cannot fault; it deliberately does not duplicate Scenario.Validate (out
// of the hot path — validate untrusted scenarios explicitly).
func (d *Dispatcher) checkScenario(sc Scenario) error {
	if n := d.app.N(); len(sc.Durations) != n || len(sc.FaultsAt) != n {
		return &ScenarioSizeError{Durations: len(sc.Durations), Faults: len(sc.FaultsAt), Want: n}
	}
	return nil
}

// Run executes one scenario and returns a freshly allocated Result. The
// errors are a *ScenarioSizeError for mis-sized scenario slices and, with
// an envelope attached under PolicyStrict, an *EnvelopeError when the
// cycle left the fault model (the Result is still populated up to the
// abort point).
func (d *Dispatcher) Run(sc Scenario) (Result, error) {
	var res Result
	err := d.RunInto(&res, sc)
	return res, err
}

// RunInto executes one scenario, reusing the buffers of res. It is the
// allocation-free entry point for bulk evaluation: pass the same Result to
// successive calls and copy out (or reduce) what you need between them.
// The errors are a *ScenarioSizeError for mis-sized scenario slices and,
// with an envelope attached under PolicyStrict, an *EnvelopeError when
// the cycle left the fault model (res is still populated up to the abort
// point).
func (d *Dispatcher) RunInto(res *Result, sc Scenario) error {
	if err := d.checkScenario(sc); err != nil {
		return err
	}
	return d.run(res, sc, nil)
}

// RunTrace is Run with full event recording, for visualisation and
// debugging. The returned events are ordered by time (ties in execution
// order). On an *EnvelopeError the result and events cover the cycle up
// to the strict abort.
func (d *Dispatcher) RunTrace(sc Scenario) (Result, []TraceEvent, error) {
	var res Result
	if err := d.checkScenario(sc); err != nil {
		return res, nil, err
	}
	var events []TraceEvent
	err := d.run(&res, sc, &events)
	return res, events, err
}

// resizeInt/resizeTime/resizeOutcome reuse a slice when it has capacity.
func resizeOutcome(s []ProcessOutcome, n int) []ProcessOutcome {
	if cap(s) < n {
		return make([]ProcessOutcome, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = NotScheduled
	}
	return s
}

func resizeTime(s []model.Time, n int) []model.Time {
	if cap(s) < n {
		return make([]model.Time, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// run is the interpreter: entries of the active schedule run in order;
// faults trigger in-slack re-execution (or run-time dropping for soft
// processes out of recovery budget); after every entry the compiled guard
// table is consulted and the best matching switch is taken. With an
// envelope attached, out-of-model events (WCET overruns, faults beyond k,
// time regressions) are detected at the completion of the affected
// execution and the configured DegradePolicy is applied at the first one;
// the non-nil error is a *EnvelopeError (PolicyStrict only).
func (d *Dispatcher) run(res *Result, sc Scenario, events *[]TraceEvent) error {
	app := d.app
	n := app.N()
	res.Utility = 0
	res.Outcomes = resizeOutcome(res.Outcomes, n)
	res.CompletionTimes = resizeTime(res.CompletionTimes, n)
	res.HardViolations = res.HardViolations[:0]
	res.Violations = res.Violations[:0]
	res.Makespan = 0
	res.Switches = 0
	res.FaultsConsumed = 0
	res.Recoveries = 0
	res.Fallbacks = 0
	res.Degraded = false
	res.ShedSlack = 0
	res.OverrunTotal = 0

	bufs := d.bufs.Get().(*cycleBufs)
	faultsLeft := bufs.faultsLeft
	copy(faultsLeft, sc.FaultsAt)

	// Per-core timelines. On the canonical single-core platform only
	// busy[0] is touched (energy accounting); the scalar clock below is
	// the paper's sequential model, byte-identical to the pre-platform
	// dispatcher.
	multi := d.multi
	ready := bufs.ready
	busy := bufs.busy
	if multi {
		for c := range ready {
			ready[c] = 0
			busy[c] = 0
		}
	} else {
		busy[0] = 0
	}

	// One branch decides the whole cycle's instrumentation: with no sink,
	// stats stays nil and the hot path below never touches it.
	sink := d.sink
	var stats *cycleBufs
	if sink != nil {
		stats = bufs
	}
	var abandoned, budgetExhausted int64
	var overruns, extraFaults, regressions int64
	// tripped: an out-of-model event was recorded (envelope only).
	// shedding: PolicyShedSoft tripped — hard entries re-execute without
	// budget, soft victims of extra faults are abandoned immediately.
	// onEmergency: entries points at the emergency hard-only suffix, so
	// positions no longer match the tree node and guard dispatch is off.
	tripped, shedding, onEmergency := false, false, false

	node := core.NodeID(0)
	entries := d.tree.Nodes[node].Schedule.Entries
	now := model.Time(0)
	for pos := 0; pos < len(entries); pos++ {
		e := entries[pos]
		p := &d.procs[e.Proc]
		var start model.Time
		var pc int32
		if multi {
			// Mapped start: the primary core's ready time, the release,
			// and cross-core precedence — completed predecessors may have
			// finished later on another core. Abandoned or dropped
			// predecessors impose nothing (stale value).
			pc = d.primCore[e.Proc]
			start = ready[pc]
			if p.Release > start {
				start = p.Release
			}
			for _, q := range d.preds[e.Proc] {
				if res.Outcomes[q] == Completed && res.CompletionTimes[q] > start {
					start = res.CompletionTimes[q]
				}
			}
		} else {
			start = now
			if p.Release > start {
				start = p.Release
			}
		}

		// The sampled duration is a property of the cycle (re-executions
		// take the same time), so envelope detection on it happens once
		// per entry; clamping truncates every attempt alike. The excess
		// beyond WCET still materialises once per attempt, which is what
		// OverrunTotal accumulates below.
		dur := sc.Durations[e.Proc]
		var excess model.Time
		if d.envelope {
			if dur < 0 {
				res.Violations = append(res.Violations, ViolationEvent{Kind: TimeRegression, Proc: e.Proc, At: start, Magnitude: -dur})
				regressions++
				tripped = true
				shedding = shedding || d.envPolicy == PolicyShedSoft
				if d.envClamp {
					dur = 0
				}
			} else if dur > p.WCET {
				res.Violations = append(res.Violations, ViolationEvent{Kind: WCETOverrun, Proc: e.Proc, At: start + dur, Magnitude: dur - p.WCET})
				overruns++
				if sink != nil {
					sink.Observe(obs.EnvelopeOverrunMagnitude, int64(dur-p.WCET))
				}
				tripped = true
				shedding = shedding || d.envPolicy == PolicyShedSoft
				if d.envClamp {
					dur = p.WCET
				} else {
					excess = dur - p.WCET
				}
			}
		}

		// Execute with in-slack re-execution.
		outcome := core.CompletedOK
		faulted := false
		completed := false
		budgetOut := false
		t := start
		ac := pc // core of the current attempt (multi only)
		for attempt := 0; ; attempt++ {
			if events != nil {
				*events = append(*events, TraceEvent{Kind: TraceStart, At: t, Proc: e.Proc, Attempt: attempt})
			}
			// Wall-clock time of this attempt on the attempt core. Under
			// checkpointing the first attempt pays its checkpoint
			// overheads; every later attempt re-runs only the final
			// segment after the last checkpoint (the rollback point is
			// determined by the sampled duration's segment geometry).
			var w model.Time
			if multi {
				w = d.scaleOn(ac, dur)
			} else {
				w = dur
			}
			if d.checkpointing {
				if attempt == 0 {
					w = d.rec.AttemptTime(w)
				} else {
					w = d.rec.ResumeTime(w)
				}
			}
			t += w
			if multi {
				busy[ac] += w
				ready[ac] = t
			} else {
				busy[0] += w
			}
			// An injected overrun materialises in full on the first
			// attempt; a checkpoint re-run repeats only its final segment,
			// so at most that much of the excess recurs.
			ex := excess
			if attempt > 0 && d.checkpointing && ex > w {
				ex = w
			}
			res.OverrunTotal += ex
			if faultsLeft[e.Proc] > 0 {
				// This attempt is hit by a transient fault,
				// detected at the end of the execution.
				faultsLeft[e.Proc]--
				res.FaultsConsumed++
				faulted = true
				if events != nil {
					*events = append(*events, TraceEvent{Kind: TraceFault, At: t, Proc: e.Proc, Attempt: attempt})
				}
				if d.envelope && res.FaultsConsumed > d.k {
					res.Violations = append(res.Violations, ViolationEvent{Kind: ExtraFault, Proc: e.Proc, At: t, Magnitude: model.Time(res.FaultsConsumed - d.k)})
					extraFaults++
					tripped = true
					if d.envPolicy == PolicyShedSoft {
						shedding = true
						if p.Kind == model.Soft {
							// Abandon the soft victim without re-executing:
							// recovery time spent on it would eat into the
							// slack the emergency suffix is about to need.
							break
						}
					}
				}
				if attempt < e.Recoveries || (shedding && p.Kind == model.Hard) {
					// Resume after the per-fault overhead of the recovery
					// model (µ, restart latency, or rollback cost). In shed
					// mode hard processes re-execute without budget: the
					// envelope's promise is to finish them if time allows.
					if events != nil {
						*events = append(*events, TraceEvent{Kind: TraceRecovery, At: t, Proc: e.Proc, Attempt: attempt})
					}
					oh := d.recOverheadOf[e.Proc]
					t += oh
					res.Recoveries++
					if multi {
						if d.checkpointing {
							// A rollback restores local checkpoint state:
							// the re-run stays on the primary core.
							busy[ac] += oh
						} else {
							// The recovery overhead runs on the recovery
							// core; the re-execution additionally waits
							// for that core to come free.
							rc := d.recCore[e.Proc]
							busy[rc] += oh
							if ready[rc] > t {
								t = ready[rc]
							}
							ac = rc
						}
					} else {
						busy[0] += oh
					}
					continue
				}
				// Recovery budget exhausted: abandon.
				budgetOut = true
				break
			}
			completed = true
			break
		}
		now = t

		if completed {
			res.Outcomes[e.Proc] = Completed
			res.CompletionTimes[e.Proc] = now
			if events != nil {
				*events = append(*events, TraceEvent{Kind: TraceComplete, At: now, Proc: e.Proc})
			}
			if faulted {
				outcome = core.CompletedRecovered
			}
			if p.Kind == model.Hard {
				if sink != nil {
					sink.Observe(obs.DispatchHardSlack, int64(p.Deadline-now))
				}
				if now > p.Deadline {
					res.HardViolations = append(res.HardViolations, e.Proc)
				}
			}
		} else {
			res.Outcomes[e.Proc] = AbandonedByFault
			outcome = core.DroppedByFault
			abandoned++
			if budgetOut {
				// Exactly Recoveries+1 attempts ran, each hit by a fault.
				res.Violations = append(res.Violations, ViolationEvent{Kind: BudgetExhausted, Proc: e.Proc, At: now, Magnitude: model.Time(e.Recoveries + 1)})
				budgetExhausted++
			}
			if events != nil {
				*events = append(*events, TraceEvent{Kind: TraceAbandon, At: now, Proc: e.Proc})
			}
			if p.Kind == model.Hard {
				// Cannot happen for NFaults <= k: hard entries
				// carry k recoveries. Record as violation.
				res.HardViolations = append(res.HardViolations, e.Proc)
			}
		}
		if now > res.Makespan {
			// Running maximum: on a single core now is monotone so this
			// equals the plain assignment; on a mapped platform a later
			// entry can finish earlier on another core.
			res.Makespan = now
		}

		if shedding && !onEmergency {
			// First out-of-model event under PolicyShedSoft: drop every
			// remaining soft process and finish the hard ones on the
			// precomputed emergency suffix. ShedSlack conservatively
			// accounts only the soft WCETs recovered before the first
			// remaining hard entry — time guaranteed returned before the
			// next hard deadline is at stake.
			for i := pos + 1; i < len(entries); i++ {
				sp := &d.procs[entries[i].Proc]
				if sp.Kind == model.Hard {
					break
				}
				// A shed soft entry returns its whole fault-free attempt,
				// checkpoint overheads included (identity off checkpointing).
				res.ShedSlack += d.rec.AttemptTime(sp.WCET)
			}
			entries = d.emergency.Suffix(node, pos+1)
			onEmergency = true
			res.Degraded = true
			if sink != nil {
				sink.Add(obs.EnvelopeSheds, 1)
			}
			pos = -1
			continue
		}
		if tripped && d.envPolicy == PolicyStrict {
			// Strict containment: stop dispatching after accounting the
			// violating entry. Hard processes that never ran are recorded
			// by the final pass below.
			break
		}
		if onEmergency {
			// Guard dispatch is off: positions index the emergency
			// suffix, not the tree node's schedule, and the guards price
			// soft utility that was just shed.
			continue
		}
		if multi {
			// A guard switch is taken only when every core has caught up
			// to the decision time: switch points are synchronisation
			// points, so the child schedule's verified start state (all
			// cores free at the guard time) soundly over-approximates the
			// actual state. Staying on the current node is always
			// deadline-safe. Trivially true on a single core.
			synced := true
			for c := 0; c < d.ncores; c++ {
				if ready[c] > now {
					synced = false
					break
				}
			}
			if !synced {
				continue
			}
		}

		next := d.next(node, pos, now, outcome, stats)
		if next != node {
			// Graceful degradation: the construction audit guarantees every
			// compiled segment targets a usable node, so an unusable target
			// here means the table (or the tree behind it) was corrupted
			// after construction. Fall back to the root f-schedule — safe
			// for any ≤ k scenario by the paper's root guarantee — rather
			// than dereferencing a broken node.
			if next < 0 || int(next) >= len(d.tree.Nodes) || d.tree.Nodes[next].Schedule == nil {
				res.Fallbacks++
				if sink != nil {
					sink.Add(obs.DispatchGuardFallbacks, 1)
				}
				next = 0
			}
		}
		if next != node {
			if sink != nil {
				sink.Observe(obs.DispatchSwitchNode, int64(next))
			}
			node = next
			entries = d.tree.Nodes[node].Schedule.Entries
			res.Switches++
			if events != nil {
				*events = append(*events, TraceEvent{Kind: TraceSwitch, At: now, Proc: e.Proc, Node: int(node)})
			}
		}
	}
	res.FinalNode = int(node)

	// Hard processes that never ran are violations too.
	for _, h := range d.hardIDs {
		if res.Outcomes[h] != Completed {
			already := false
			for _, v := range res.HardViolations {
				if v == h {
					already = true
					break
				}
			}
			if !already {
				res.HardViolations = append(res.HardViolations, h)
			}
		}
	}

	res.Utility = d.totalUtility(res.Outcomes, res.CompletionTimes, bufs)

	// Energy accounting: active energy is per-core busy time × active
	// power; idle energy is the remainder of the operation cycle × idle
	// power (clamped at zero for out-of-model cycles that overran the
	// period). On the canonical platform (power 1/0) Energy equals the
	// core's busy time.
	res.CoreBusy = resizeTime(res.CoreBusy, d.ncores)
	res.CoreEnergy = resizeFloat(res.CoreEnergy, d.ncores)
	var eact, eidl float64
	for c := 0; c < d.ncores; c++ {
		b := busy[c]
		idle := d.period - b
		if idle < 0 {
			idle = 0
		}
		ea := float64(b) * d.powerA[c]
		ei := float64(idle) * d.powerI[c]
		res.CoreBusy[c] = b
		res.CoreEnergy[c] = ea + ei
		eact += ea
		eidl += ei
	}
	res.EnergyActive = eact
	res.EnergyIdle = eidl
	res.Energy = eact + eidl

	if sink != nil {
		sink.Add(obs.DispatchCycles, 1)
		sink.Add(obs.DispatchEnergy, int64(res.Energy))
		sink.Observe(obs.DispatchCycleEnergy, int64(res.Energy))
		sink.Add(obs.DispatchSwitches, int64(res.Switches))
		sink.Add(obs.DispatchFaultsAbsorbed, int64(res.Recoveries))
		sink.Add(obs.DispatchFaultsAbandoned, abandoned)
		if overruns != 0 {
			sink.Add(obs.EnvelopeOverruns, overruns)
		}
		if extraFaults != 0 {
			sink.Add(obs.EnvelopeExtraFaults, extraFaults)
		}
		if regressions != 0 {
			sink.Add(obs.EnvelopeTimeRegressions, regressions)
		}
		if budgetExhausted != 0 {
			sink.Add(obs.EnvelopeBudgetExhausted, budgetExhausted)
		}
		// Flush (and zero — pooled scratch must come back clean) the
		// guard-depth tally: one ObserveN per distinct depth.
		for i, c := range bufs.depthCounts {
			if c != 0 {
				sink.ObserveN(obs.DispatchGuardDepth, int64(i), int64(c))
				bufs.depthCounts[i] = 0
			}
		}
	}
	d.bufs.Put(bufs)

	if tripped && d.envPolicy == PolicyStrict {
		// Error path: copying the event record allocates, but strict
		// callers are aborting the cycle anyway — the 0-alloc guarantee
		// covers in-model cycles.
		evs := make([]ViolationEvent, len(res.Violations))
		copy(evs, res.Violations)
		return &EnvelopeError{Policy: PolicyStrict, Events: evs}
	}
	return nil
}

// totalUtility applies the stale-value model to the realised outcomes,
// using the cached topology and pooled coefficient buffers. The arithmetic
// matches app.StaleCoefficients exactly (same order, same operations).
func (d *Dispatcher) totalUtility(outcomes []ProcessOutcome, done []model.Time, bufs *cycleBufs) float64 {
	status := bufs.status
	for id := range status {
		if outcomes[id] == Completed {
			status[id] = utility.Executed
		} else {
			status[id] = utility.Dropped
		}
	}
	utility.CoefficientsInto(bufs.alpha, d.order, d.preds, status)
	var total float64
	for id := range d.procs {
		if d.procs[id].Kind != model.Soft || outcomes[id] != Completed {
			continue
		}
		total += bufs.alpha[id] * d.app.UtilityOf(model.ProcessID(id)).Value(done[id])
	}
	return total
}
