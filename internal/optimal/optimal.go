// Package optimal finds utility-optimal fault-tolerant static schedules
// for small applications by exact dynamic programming over process
// subsets. It exists as a quality yardstick: the FTSS heuristic (and,
// transitively, the FTQS tree rooted in it) can be scored against the true
// optimum on instances up to ~20 processes, something the paper could not
// report.
//
// Scope and conventions (documented restrictions):
//
//   - release-free applications (hyper-period instances excluded);
//   - hard processes carry the full recovery budget f = k, soft processes
//     none — soft recoveries never increase the no-fault utility that this
//     optimiser maximises, they only consume worst-case slack;
//   - the objective is the paper's static figure of merit: expected
//     utility at average execution times in the no-fault scenario, with
//     stale-value degradation for dropped processes;
//   - feasibility is the paper's worst-case guarantee: every hard deadline
//     and the period hold under any allocation of k faults.
//
// The DP exploits three structural facts. First, the worst-case completion
// of a process depends only on the *set* of processes before it (the
// shared recovery slack maximises over fault allocations, which is
// order-free), so hard-deadline feasibility is a set property. Second, the
// stale-value coefficient of a process is determined by the set of its
// ancestors that execute, because precedence forces every executed
// ancestor to be scheduled earlier. Third, "this process was skipped" is
// also a set property: a process is permanently dropped exactly when one
// of its successors has executed. Together they make value(S) well-defined
// over subsets S, giving an O(2^n·n) recursion.
package optimal

import (
	"fmt"
	"math"

	"ftsched/internal/model"
	"ftsched/internal/schedule"
)

// MaxProcesses bounds the instance size the exact optimiser accepts
// (memory: O(2^n) per tracked quantity).
const MaxProcesses = 20

// Result carries the optimum and its schedule.
type Result struct {
	// Schedule is an optimal f-schedule (hard recoveries k, soft 0).
	Schedule *schedule.FSchedule
	// Utility is the optimal expected no-fault utility.
	Utility float64
	// Explored counts reachable DP states, for curiosity and tests.
	Explored int
}

// Schedule computes the utility-optimal fault-tolerant schedule. It fails
// when even the hard-only schedule cannot meet its deadlines, and for
// instances outside the supported scope.
func Schedule(app *model.Application) (*Result, error) {
	n := app.N()
	if n > MaxProcesses {
		return nil, fmt.Errorf("optimal: %d processes exceed the exact-DP limit %d", n, MaxProcesses)
	}
	for id := 0; id < n; id++ {
		if app.Proc(model.ProcessID(id)).Release != 0 {
			return nil, fmt.Errorf("optimal: release times are not supported (process %s)",
				app.Proc(model.ProcessID(id)).Name)
		}
	}
	k := app.K()

	// Per-process constants. Attempt times (wcet/aet) are inflated by the
	// recovery model's per-attempt checkpoint overheads, and the per-fault
	// recovery item comes from the model's worst-case bound — identity
	// with the paper's wcet+µ under canonical re-execution.
	rec := app.Recovery()
	wcet := make([]schedule.Time, n)
	aet := make([]schedule.Time, n)
	recCost := make([]schedule.Time, n) // worst per-fault cost, hard only (soft never recovers here)
	hard := make([]bool, n)
	var hardMask uint32
	predMask := make([]uint32, n)
	succMask := make([]uint32, n)
	for id := 0; id < n; id++ {
		p := app.Proc(model.ProcessID(id))
		wcet[id] = rec.AttemptTime(p.WCET)
		aet[id] = rec.AttemptTime(p.AET)
		if p.Kind == model.Hard {
			hard[id] = true
			hardMask |= 1 << id
			recCost[id] = app.WorstRecoveryCost(model.ProcessID(id))
		}
		for _, q := range app.Preds(model.ProcessID(id)) {
			predMask[id] |= 1 << q
			succMask[q] |= 1 << id
		}
	}

	size := 1 << n
	const unreachable = -1.0
	value := make([]float64, size)
	choice := make([]int8, size)
	wsum := make([]schedule.Time, size)   // Σ wcet over S (set-determined)
	asum := make([]schedule.Time, size)   // Σ aet over S (set-determined)
	maxRec := make([]schedule.Time, size) // max hard recovery item in S (set-determined)
	for i := range value {
		value[i] = unreachable
		choice[i] = -1
	}
	value[0] = 0

	topo := app.Topo()
	av := make([]float64, n)
	// alphasFor fills av with the stale coefficients of the members of S,
	// under the invariant that executed ancestors of any member are in S.
	alphasFor := func(S uint32) {
		for _, id := range topo {
			if S&(1<<id) == 0 {
				av[id] = 0
				continue
			}
			sum := 1.0
			cnt := 1
			for _, q := range app.Preds(id) {
				cnt++
				if S&(1<<q) != 0 {
					sum += av[q]
				}
			}
			av[id] = sum / float64(cnt)
		}
	}

	explored := 1
	for S := uint32(0); S < uint32(size); S++ {
		if value[S] == unreachable {
			continue
		}
		alphasFor(S)
		for id := 0; id < n; id++ {
			bit := uint32(1) << id
			if S&bit != 0 {
				continue
			}
			// A process with an executed successor was skipped for
			// good: its consumer already ran on the stale value.
			if succMask[id]&S != 0 {
				continue
			}
			// Appending id declares its absent predecessors dropped;
			// hard predecessors can never be dropped.
			absentPreds := predMask[id] &^ S
			if absentPreds&hardMask != 0 {
				continue
			}
			NS := S | bit
			// Worst-case feasibility for a hard process: set-based
			// shared slack (all k faults on the largest hard item).
			newRec := maxRec[S]
			if hard[id] && recCost[id] > newRec {
				newRec = recCost[id]
			}
			finish := wsum[S] + wcet[id]
			if hard[id] {
				if finish+schedule.Time(k)*newRec > app.Proc(model.ProcessID(id)).Deadline {
					continue
				}
			}
			// Utility contribution at the AET completion, with the
			// stale coefficient induced by the executed ancestors.
			contrib := 0.0
			if !hard[id] {
				done := asum[S] + aet[id]
				sum := 1.0
				cnt := 1
				for _, q := range app.Preds(model.ProcessID(id)) {
					cnt++
					if S&(1<<q) != 0 {
						sum += av[q]
					}
				}
				alpha := sum / float64(cnt)
				contrib = alpha * app.UtilityOf(model.ProcessID(id)).Value(done)
			}
			nv := value[S] + contrib
			if value[NS] == unreachable {
				explored++
				wsum[NS] = finish
				asum[NS] = asum[S] + aet[id]
				nr := maxRec[S]
				if hard[id] && recCost[id] > nr {
					nr = recCost[id]
				}
				maxRec[NS] = nr
			}
			if nv > value[NS] {
				value[NS] = nv
				choice[NS] = int8(id)
			}
		}
	}

	// Pick the best final state: all hard included, period respected.
	best := uint32(0)
	bestVal := math.Inf(-1)
	found := false
	for S := uint32(0); S < uint32(size); S++ {
		if value[S] == unreachable || S&hardMask != hardMask {
			continue
		}
		if wsum[S]+schedule.Time(k)*maxRec[S] > app.Period() {
			continue
		}
		if value[S] > bestVal {
			best, bestVal, found = S, value[S], true
		}
	}
	if !found {
		return nil, fmt.Errorf("optimal: application is not schedulable")
	}

	// Reconstruct the order.
	var rev []schedule.Entry
	for S := best; S != 0; {
		id := int(choice[S])
		f := 0
		if hard[id] {
			f = k
		}
		rev = append(rev, schedule.Entry{Proc: model.ProcessID(id), Recoveries: f})
		S &^= 1 << id
	}
	entries := make([]schedule.Entry, len(rev))
	for i := range rev {
		entries[i] = rev[len(rev)-1-i]
	}
	s := &schedule.FSchedule{Entries: entries}
	if err := schedule.Validate(app, s); err != nil {
		return nil, fmt.Errorf("optimal: internal error: %w", err)
	}
	if err := schedule.CheckSchedulable(app, entries, 0, k); err != nil {
		return nil, fmt.Errorf("optimal: internal error: %w", err)
	}
	return &Result{Schedule: s, Utility: bestVal, Explored: explored}, nil
}
