package optimal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/apps"
	"ftsched/internal/core"
	"ftsched/internal/gen"
	"ftsched/internal/model"
	"ftsched/internal/schedule"
	"ftsched/internal/utility"
)

func TestOptimalFig1(t *testing.T) {
	app := apps.Fig1()
	res, err := Schedule(app)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's S2 order (P1, P3, P2) with utility 60 is optimal for
	// average execution times.
	if res.Utility != 60 {
		t.Errorf("optimal utility = %g, want 60", res.Utility)
	}
	if got := schedule.ExpectedUtility(app, res.Schedule); got != res.Utility {
		t.Errorf("schedule evaluates to %g, DP claims %g", got, res.Utility)
	}
}

func TestOptimalFig8(t *testing.T) {
	app := apps.Fig8()
	res, err := Schedule(app)
	if err != nil {
		t.Fatal(err)
	}
	ftss, err := core.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	uF := schedule.ExpectedUtility(app, ftss)
	if res.Utility+1e-9 < uF {
		t.Errorf("optimal %g below FTSS %g", res.Utility, uF)
	}
	if err := schedule.CheckSchedulable(app, res.Schedule.Entries, 0, app.K()); err != nil {
		t.Error(err)
	}
}

func TestOptimalRejectsScopeViolations(t *testing.T) {
	big := model.NewApplication("big", 10000, 0, 1)
	for i := 0; i < MaxProcesses+1; i++ {
		big.AddProcess(model.Process{Name: string(rune('A'+i%26)) + string(rune('a'+i/26)),
			Kind: model.Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 5000})
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(big); err == nil {
		t.Error("oversized instance accepted")
	}

	rel := model.NewApplication("rel", 1000, 0, 1)
	rel.AddProcess(model.Process{Name: "A", Kind: model.Hard, BCET: 1, AET: 1, WCET: 1, Deadline: 500, Release: 10})
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(rel); err == nil {
		t.Error("release-bearing instance accepted")
	}
}

func TestOptimalUnschedulable(t *testing.T) {
	a := model.NewApplication("un", 1000, 2, 10)
	a.AddProcess(model.Process{Name: "H", Kind: model.Hard, BCET: 50, AET: 60, WCET: 80, Deadline: 100})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(a); err == nil {
		t.Error("unschedulable instance accepted")
	}
}

// bruteForce enumerates every precedence-feasible sequence over every
// subset and returns the best feasible expected utility, using the same
// conventions as the DP (hard f=k, soft f=0).
func bruteForce(app *model.Application) (float64, bool) {
	n := app.N()
	k := app.K()
	best := math.Inf(-1)
	found := false
	var entries []schedule.Entry
	inSeq := make([]bool, n)
	skipped := make([]bool, n)

	var rec func()
	rec = func() {
		// Evaluate the current complete assignment (everything not in
		// the sequence is dropped).
		allHard := true
		for _, h := range app.HardIDs() {
			if !inSeq[h] {
				allHard = false
				break
			}
		}
		if allHard && schedule.Schedulable(app, entries, 0, k) {
			s := &schedule.FSchedule{Entries: entries}
			if schedule.Validate(app, s) == nil {
				u := schedule.ExpectedUtility(app, s)
				if u > best {
					best = u
				}
				found = true
			}
		}
		for id := 0; id < n; id++ {
			if inSeq[id] || skipped[id] {
				continue
			}
			// Precedence: executed preds must already be in the
			// sequence; absent preds become skipped.
			ok := true
			var newSkips []int
			for _, q := range app.Preds(model.ProcessID(id)) {
				if inSeq[q] {
					continue
				}
				if app.Proc(q).Kind == model.Hard {
					ok = false
					break
				}
				if !skipped[q] {
					newSkips = append(newSkips, int(q))
				}
			}
			if !ok {
				continue
			}
			f := 0
			if app.Proc(model.ProcessID(id)).Kind == model.Hard {
				f = k
			}
			for _, q := range newSkips {
				skipped[q] = true
			}
			inSeq[id] = true
			entries = append(entries, schedule.Entry{Proc: model.ProcessID(id), Recoveries: f})
			rec()
			entries = entries[:len(entries)-1]
			inSeq[id] = false
			for _, q := range newSkips {
				skipped[q] = false
			}
		}
	}
	rec()
	return best, found
}

// TestOptimalMatchesBruteForce: on random tiny instances the DP equals
// exhaustive search.
func TestOptimalMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		k := rng.Intn(3)
		app := tinyApp(rng, n, k)
		res, err := Schedule(app)
		bf, ok := bruteForce(app)
		if err != nil {
			if ok {
				t.Logf("seed %d: DP unschedulable but brute force found %g", seed, bf)
				return false
			}
			return true
		}
		if !ok {
			t.Logf("seed %d: DP found %g but brute force nothing", seed, res.Utility)
			return false
		}
		if math.Abs(res.Utility-bf) > 1e-9 {
			t.Logf("seed %d: DP %g != brute %g", seed, res.Utility, bf)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func tinyApp(rng *rand.Rand, n, k int) *model.Application {
	app := model.NewApplication("tiny", model.Time(200+rng.Intn(400)), k, model.Time(1+rng.Intn(10)))
	ids := make([]model.ProcessID, n)
	for i := 0; i < n; i++ {
		w := model.Time(5 + rng.Intn(50))
		b := model.Time(rng.Int63n(int64(w) + 1))
		p := model.Process{
			Name: string(rune('A' + i)),
			BCET: b, AET: b + (w-b)/2, WCET: w,
		}
		if rng.Float64() < 0.5 {
			p.Kind = model.Hard
			p.Deadline = model.Time(100 + rng.Intn(500))
		} else {
			p.Kind = model.Soft
			h1 := model.Time(20 + rng.Intn(200))
			p.Utility = utility.MustStep([]model.Time{h1, h1 + model.Time(1+rng.Intn(200))},
				[]float64{float64(5 + rng.Intn(50)), float64(rng.Intn(5))})
		}
		ids[i] = app.AddProcess(p)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				_ = app.AddEdge(ids[i], ids[j])
			}
		}
	}
	if err := app.Validate(); err != nil {
		panic(err)
	}
	return app
}

// TestFTSSWithinOptimal: FTSS never beats the optimum; over many random
// instances the aggregate ratio stays above 80%. (Measured: ≈84%. The gap
// comes from the heuristic's permanent greedy dropping decisions — see the
// OptimalityGap experiment — and is inherent to the paper's FTSS, whose
// claims are only relative to FTSF and below FTQS.)
func TestFTSSWithinOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sumOpt, sumFTSS float64
	count := 0
	for i := 0; i < 60; i++ {
		cfg := gen.Default(12)
		cfg.K = 2
		app, err := gen.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(app)
		if err != nil {
			continue
		}
		ftss, err := core.FTSS(app)
		if err != nil {
			continue
		}
		uF := schedule.ExpectedUtility(app, ftss)
		if uF > res.Utility+1e-9 {
			// FTSS may only exceed the DP if it used soft recoveries
			// (impossible: they don't change the no-fault utility) —
			// this would be a real bug.
			t.Errorf("instance %d: FTSS %g beats optimal %g", i, uF, res.Utility)
		}
		sumOpt += res.Utility
		sumFTSS += uF
		count++
	}
	if count < 20 {
		t.Fatalf("only %d usable instances", count)
	}
	ratio := sumFTSS / sumOpt
	t.Logf("FTSS achieves %.1f%% of optimal over %d instances", 100*ratio, count)
	if ratio < 0.80 {
		t.Errorf("FTSS at %.1f%% of optimal, expected >= 80%%", 100*ratio)
	}
}
