package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("mean of 1..4")
	}
	if Mean(nil) != 0 {
		t.Error("mean of empty")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.13808993529939) {
		t.Errorf("stddev = %g", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if StdDev([]float64{5}) != 0 || StdDev(nil) != 0 {
		t.Error("degenerate stddev")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 12, 9, 11}
	want := 1.96 * StdDev(xs) / math.Sqrt(8)
	if !almost(CI95(xs), want) {
		t.Errorf("CI95 = %g, want %g", CI95(xs), want)
	}
	if CI95([]float64{3}) != 0 {
		t.Error("single-sample CI must be 0")
	}
}

func TestNormalizeAndRatio(t *testing.T) {
	out := Normalize([]float64{50, 100, 150}, 100)
	if !almost(out[0], 50) || !almost(out[1], 100) || !almost(out[2], 150) {
		t.Errorf("Normalize = %v", out)
	}
	if z := Normalize([]float64{1, 2}, 0); z[0] != 0 || z[1] != 0 {
		t.Error("zero base must produce zeros")
	}
	if !almost(Ratio(120, 80), 150) {
		t.Error("Ratio(120,80)")
	}
	if Ratio(5, 0) != 0 {
		t.Error("Ratio with zero base")
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(112.46); got != "112.5%" {
		t.Errorf("FormatPct = %q", got)
	}
}

// TestMeanShiftProperty: Mean is translation-equivariant and StdDev is
// translation-invariant.
func TestMeanShiftProperty(t *testing.T) {
	check := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ys[i] = xs[i] + shift
		}
		return math.Abs(Mean(ys)-Mean(xs)-shift) < 1e-6 &&
			math.Abs(StdDev(ys)-StdDev(xs)) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
