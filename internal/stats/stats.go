// Package stats provides the small statistical toolkit the experiment
// harness needs: means, standard deviations, normalisation and normal-
// approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1), or 0 when fewer than
// two samples exist.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under the normal approximation (z = 1.96).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// Normalize returns xs scaled so that base maps to 100 (percent). A zero
// base yields zeros, avoiding NaNs for degenerate workloads.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = 100 * x / base
	}
	return out
}

// Ratio returns 100·x/base, or 0 when base is 0.
func Ratio(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * x / base
}

// FormatPct renders a percentage with one decimal, e.g. "112.5%".
func FormatPct(x float64) string {
	return fmt.Sprintf("%.1f%%", x)
}
