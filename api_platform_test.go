package ftsched_test

import (
	"bytes"
	"testing"

	"ftsched"
)

// TestPublicPlatformPipeline drives the heterogeneous-platform surface end
// to end through the facade: build a two-core platform, map the paper's
// Fig. 1 application onto it, synthesise, persist (v3), dispatch and
// evaluate — and check the energy accounting against the single-core run.
func TestPublicPlatformPipeline(t *testing.T) {
	plat, err := ftsched.NewPlatform(
		ftsched.Core{Name: "lp", Speed: 1, PowerActive: 1, PowerIdle: 0.05},
		ftsched.Core{Name: "hp", Speed: 2, PowerActive: 3, PowerIdle: 0.15},
	)
	if err != nil {
		t.Fatal(err)
	}
	var _ *ftsched.Platform = plat
	parsed, err := ftsched.ParseCoreSpec("lp:1:1:0.05,hp:2:3:0.15")
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(plat) {
		t.Fatalf("core-spec parse diverged: %v vs %v", parsed, plat)
	}
	if ftsched.SingleCorePlatform().NCores() != 1 {
		t.Fatal("canonical platform is not single-core")
	}

	base := ftsched.PaperFig1()
	m := ftsched.BiasedMapping(base, plat)
	var zero ftsched.CoreID
	for _, c := range m.Primary {
		if c != zero {
			t.Fatalf("biased mapping put a primary on core %d, want the low-power core", c)
		}
	}
	for _, c := range m.Recovery {
		if c != ftsched.CoreID(1) {
			t.Fatalf("biased mapping put a recovery on core %d, want the fastest core", c)
		}
	}
	var mapping ftsched.Mapping = m
	app, err := base.WithPlatform(plat, mapping)
	if err != nil {
		t.Fatal(err)
	}

	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ftsched.VerifyTree(tree); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ftsched.WriteTreeCompact(&buf, tree); err != nil {
		t.Fatal(err)
	}
	back, err := ftsched.ReadTree(&buf, app)
	if err != nil {
		t.Fatal(err)
	}

	cfg := ftsched.MCConfig{Scenarios: 800, Faults: 1, Seed: 7, Workers: 3}
	het, err := ftsched.MonteCarlo(back, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if het.HardViolations != 0 {
		t.Fatalf("%d hard violations on the mapped tree", het.HardViolations)
	}
	if het.MeanEnergy <= 0 || het.MeanEnergyIdle <= 0 ||
		het.MeanEnergy != het.MeanEnergyActive+het.MeanEnergyIdle {
		t.Fatalf("energy split inconsistent: %v = %v + %v",
			het.MeanEnergy, het.MeanEnergyActive, het.MeanEnergyIdle)
	}

	// Canonical single-core run of the same application: energy equals the
	// core's busy time (active power 1, idle power 0).
	stree, err := ftsched.FTQS(base, ftsched.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	single, err := ftsched.MonteCarlo(stree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if single.MeanEnergyIdle != 0 || single.MeanEnergy != single.MeanEnergyActive {
		t.Fatalf("canonical energy split inconsistent: %+v", single)
	}
}
