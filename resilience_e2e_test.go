package ftsched_test

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
)

// TestResilienceCLIEndToEnd replays the README's "Surviving a hostile
// wire" walkthrough verbatim (argument for argument; binaries are
// prebuilt instead of `go run`, and the listen address is an ephemeral
// port read back from ftserved's startup line instead of the documented
// 8433, so parallel test runs cannot collide). It gates the resilience
// acceptance criteria:
//
//   - ftsim -remote through a fault-injecting server with the retrying
//     client prints FTQS rows byte-identical to an unfaulted local run
//   - the ftload -chaos soak — wire faults plus a hard kill+restart of
//     the server mid-run — completes with zero lost responses
//   - a faulted server still drains cleanly on SIGTERM
//
// Skipped with -short.
func TestResilienceCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		return out
	}
	ftserved := build("ftserved")
	ftsim := build("ftsim")
	ftload := build("ftload")

	// go run ./cmd/ftserved -addr 127.0.0.1:8433 -fault-spec '...' -fault-seed 7
	const spec = "latency:p=0.1,ms=5;error:p=0.05;reset:p=0.05;truncate:p=0.03;corrupt:p=0.03"
	served := exec.Command(ftserved, "-addr", "127.0.0.1:0", "-fault-spec", spec, "-fault-seed", "7")
	stderr, err := served.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := served.Start(); err != nil {
		t.Fatalf("starting ftserved: %v", err)
	}
	defer served.Process.Kill()
	rd := bufio.NewReader(stderr)
	var base, startup string
	for base == "" {
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("reading ftserved startup (got %q): %v", startup, err)
		}
		startup += line
		if m := regexp.MustCompile(`on (http://[^/]+)/v1/`).FindStringSubmatch(line); m != nil {
			base = m[1]
		}
	}
	if !strings.Contains(startup, "injecting wire faults") {
		t.Errorf("ftserved startup does not announce fault injection:\n%s", startup)
	}
	drained := make(chan string, 1)
	go func() {
		rest, _ := io.ReadAll(rd)
		drained <- string(rest)
	}()

	run := func(binary string, args ...string) string {
		cmd := exec.Command(binary, args...)
		cmd.Dir = bin
		b, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(binary), args, err, b)
		}
		return string(b)
	}

	// go run ./cmd/ftsim -fixture fig1 -scenarios 2000 -remote <base> -retries 8
	remote := run(ftsim, "-fixture", "fig1", "-scenarios", "2000", "-remote", base, "-retries", "8")
	local := run(ftsim, "-fixture", "fig1", "-scenarios", "2000")
	rows := 0
	tableRow := regexp.MustCompile(`^FTQS\s+\d+\s`)
	for _, l := range strings.Split(remote, "\n") {
		if tableRow.MatchString(l) {
			rows++
			if !strings.Contains(local, l+"\n") {
				t.Errorf("faulted remote row differs from unfaulted local run:\n%q\nlocal:\n%s", l, local)
			}
		}
	}
	if rows == 0 {
		t.Errorf("no FTQS rows in faulted remote output:\n%s", remote)
	}

	// go run ./cmd/ftload -chaos -devices 64 -requests 20 -batch 32 -out BENCH_resilience.json
	out := run(ftload, "-chaos", "-devices", "64", "-requests", "20", "-batch", "32", "-out", "BENCH_resilience.json")
	for _, want := range []string{"0 errors", "0 lost", "killing server", "availability 1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos soak output missing %q:\n%s", want, out)
		}
	}
	var bench struct {
		OK           int64   `json:"ok"`
		Errors       int64   `json:"errors"`
		Lost         int64   `json:"lost_responses"`
		Availability float64 `json:"availability"`
		Chaos        bool    `json:"chaos"`
		Restarts     int     `json:"restarts"`
		Injected     int64   `json:"injected_faults"`
		Retries      int64   `json:"retries"`
	}
	data, err := os.ReadFile(filepath.Join(bin, "BENCH_resilience.json"))
	if err != nil {
		t.Fatalf("reading BENCH_resilience.json: %v", err)
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("parsing BENCH_resilience.json: %v", err)
	}
	if !bench.Chaos || bench.Restarts < 1 {
		t.Errorf("soak did not kill+restart the server: %+v", bench)
	}
	if bench.OK != 64*20 || bench.Lost != 0 || bench.Errors != 0 || bench.Availability != 1 {
		t.Errorf("soak lost responses: %+v", bench)
	}
	if bench.Injected == 0 {
		t.Errorf("soak injected no wire faults: %+v", bench)
	}

	// A faulted server still drains cleanly on SIGTERM (health and drain
	// paths are exempt from injection).
	if err := served.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := served.Wait(); err != nil {
		t.Fatalf("ftserved exited non-zero after drain: %v", err)
	}
	if rest := <-drained; !strings.Contains(rest, "drained, bye") {
		t.Errorf("drain log missing 'drained, bye':\n%s", rest)
	}
}
