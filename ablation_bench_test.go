package ftsched_test

import (
	"math/rand"
	"testing"

	"ftsched"
	"ftsched/internal/core"
	"ftsched/internal/sim"
)

// Ablation benchmarks for the design decisions documented in DESIGN.md and
// EXPERIMENTS.md. Each reports, besides the synthesis cost, the measured
// FTQS-over-FTSS utility gain as a custom metric "gain%" so the effect of
// the ablated mechanism is visible in the benchmark output.

func ablationApps(b *testing.B) []*ftsched.Application {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	var out []*ftsched.Application
	for i := 0; i < 200 && len(out) < 6; i++ {
		app, err := ftsched.Generate(rng, ftsched.DefaultGenConfig(30))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ftsched.FTSS(app); err == nil {
			out = append(out, app)
		}
	}
	if len(out) == 0 {
		b.Fatal("no schedulable instance")
	}
	return out
}

// ablationGain returns the FTQS-over-FTSS utility gain in percent,
// averaged over the given applications.
func ablationGain(b *testing.B, apps []*ftsched.Application, opts core.FTQSOptions) float64 {
	b.Helper()
	var sum float64
	for _, app := range apps {
		root, err := core.FTSS(app)
		if err != nil {
			b.Fatal(err)
		}
		tree, err := core.FTQSFromRoot(app, root, opts)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.MCConfig{Scenarios: 2000, Faults: 0, Seed: 7}
		q, err := sim.MonteCarlo(tree, cfg)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.MonteCarlo(sim.StaticTree(app, root), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if s.MeanUtility > 0 {
			sum += 100 * (q.MeanUtility - s.MeanUtility) / s.MeanUtility
		}
	}
	return sum / float64(len(apps))
}

// BenchmarkAblationRevival isolates the contribution of re-admitting
// processes the pessimistic root dropped (DESIGN.md: the dominant source
// of the quasi-static gain).
func BenchmarkAblationRevival(b *testing.B) {
	apps := ablationApps(b)
	for _, c := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(c.name, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				gain = ablationGain(b, apps, core.FTQSOptions{M: 24, DisableRevival: c.disable})
			}
			b.ReportMetric(gain, "gain%")
		})
	}
}

// BenchmarkAblationEvalScenarios compares the paper's average-execution-
// time point estimate against the deterministic quadrature used by
// default in interval partitioning.
func BenchmarkAblationEvalScenarios(b *testing.B) {
	apps := ablationApps(b)
	for _, c := range []struct {
		name      string
		scenarios int
	}{{"point", 1}, {"quadrature8", 8}, {"quadrature16", 16}} {
		b.Run(c.name, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				gain = ablationGain(b, apps, core.FTQSOptions{M: 24, EvalScenarios: c.scenarios})
			}
			b.ReportMetric(gain, "gain%")
		})
	}
}
