package ftsched_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ftsched"
)

// TestCertifyFig1: the paper's running example must certify clean in
// exhaustive mode, and the report must be identical for any worker count.
func TestCertifyFig1(t *testing.T) {
	app := ftsched.PaperFig1()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 12})
	if err != nil {
		t.Fatal(err)
	}
	var rep ftsched.CertifyReport
	rep, err = ftsched.Certify(tree, ftsched.CertifyConfig{})
	if err != nil {
		t.Fatalf("certification failed: %v", err)
	}
	if rep.Mode != "exhaustive" {
		t.Errorf("mode = %q, want exhaustive", rep.Mode)
	}
	if rep.MaxFaults != app.K() {
		t.Errorf("MaxFaults = %d, want k=%d", rep.MaxFaults, app.K())
	}
	if rep.Patterns == 0 || rep.Scenarios == 0 {
		t.Errorf("empty exploration: %+v", rep)
	}
	if rep.WorstSlack <= 0 {
		t.Errorf("certified tree with non-positive worst slack %d", rep.WorstSlack)
	}
	for _, workers := range []int{1, 4} {
		again, err := ftsched.Certify(tree, ftsched.CertifyConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, rep) {
			t.Errorf("workers=%d: report diverged: %+v != %+v", workers, again, rep)
		}
	}
}

// unsafeTree hand-builds a structurally valid but semantically unsafe
// one-node tree: the hard process P1 is scheduled with no recovery budget,
// so a single fault abandons it and misses its deadline.
func unsafeTree(app *ftsched.Application) *ftsched.Tree {
	entries := make([]ftsched.Entry, app.N())
	for id := 0; id < app.N(); id++ {
		entries[id] = ftsched.Entry{Proc: ftsched.ProcessID(id), Recoveries: 0}
	}
	return &ftsched.Tree{
		App: app,
		Nodes: []ftsched.Node{{
			Schedule:       &ftsched.FSchedule{Entries: entries},
			Parent:         ftsched.NoNode,
			DroppedOnFault: ftsched.NoProcess,
		}},
	}
}

// TestCertifyCounterexample: certification of an unsafe tree must return a
// typed CounterexampleError whose scenario replays to the same violation
// through a fresh dispatcher.
func TestCertifyCounterexample(t *testing.T) {
	app := ftsched.PaperFig1()
	tree := unsafeTree(app)
	rep, err := ftsched.Certify(tree, ftsched.CertifyConfig{})
	if err == nil {
		t.Fatal("unsafe tree certified")
	}
	var ceErr *ftsched.CounterexampleError
	if !errors.As(err, &ceErr) {
		t.Fatalf("err = %T %v, want *CounterexampleError", err, err)
	}
	var ce ftsched.Counterexample = ceErr.Counterexample
	p1 := app.IDByName("P1")
	if ce.Proc != p1 {
		t.Errorf("violated process = %d, want P1 (%d)", ce.Proc, p1)
	}
	if ce.Deadline != app.Proc(p1).Deadline {
		t.Errorf("deadline = %d, want %d", ce.Deadline, app.Proc(p1).Deadline)
	}
	if len(ce.Path) == 0 || ce.Path[0] != 0 {
		t.Errorf("path %v does not start at the root", ce.Path)
	}
	if rep.Scenarios == 0 {
		t.Error("report discarded alongside the counterexample")
	}
	// The scenario must reproduce the violation on replay.
	r, err := ftsched.Run(tree, ce.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HardViolations) == 0 {
		t.Error("counterexample scenario replays clean")
	}
}

// TestCertifyContextCancelled: a cancelled context unwinds the engine and
// surfaces ctx.Err().
func TestCertifyContextCancelled(t *testing.T) {
	app := ftsched.PaperFig1()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 12})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ftsched.CertifyContext(ctx, tree, ftsched.CertifyConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDispatcherTypedErrors: malformed trees and mis-sized scenarios
// surface as typed errors through the facade, never as panics.
func TestDispatcherTypedErrors(t *testing.T) {
	app := ftsched.PaperFig1()
	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}

	bad := unsafeTree(app)
	bad.Nodes[0].ArcStart, bad.Nodes[0].ArcEnd = 0, 5 // outside the empty arena
	var mte *ftsched.MalformedTreeError
	if _, err := ftsched.NewDispatcher(bad); !errors.As(err, &mte) {
		t.Fatalf("NewDispatcher(bad) = %v, want *MalformedTreeError", err)
	}
	if _, err := ftsched.Certify(bad, ftsched.CertifyConfig{}); !errors.As(err, &mte) {
		t.Fatalf("Certify(bad) = %v, want *MalformedTreeError", err)
	}

	d := ftsched.MustNewDispatcher(tree)
	var sse *ftsched.ScenarioSizeError
	if _, err := d.Run(ftsched.Scenario{}); !errors.As(err, &sse) {
		t.Fatalf("Run(empty scenario) = %v, want *ScenarioSizeError", err)
	}
	if _, err := ftsched.Run(tree, ftsched.Scenario{}); !errors.As(err, &sse) {
		t.Fatalf("facade Run(empty scenario) = %v, want *ScenarioSizeError", err)
	}
}

// TestSampleScenarioBounds: out-of-bounds sampling requests return a typed
// *SampleError before touching the RNG.
func TestSampleScenarioBounds(t *testing.T) {
	app := ftsched.PaperFig1()
	rng := rand.New(rand.NewSource(1))
	var se *ftsched.SampleError
	if _, err := ftsched.SampleScenario(app, rng, app.K()+1, nil); !errors.As(err, &se) {
		t.Fatalf("faults>k: err = %v, want *SampleError", err)
	}
	if _, err := ftsched.SampleScenario(app, rng, -1, nil); !errors.As(err, &se) {
		t.Fatalf("negative faults: err = %v, want *SampleError", err)
	}
	if _, err := ftsched.SampleScenario(app, rng, 1, []ftsched.ProcessID{}); !errors.As(err, &se) {
		t.Fatalf("empty pool: err = %v, want *SampleError", err)
	}
	if se.NFaults != 1 || !se.EmptyPool {
		t.Errorf("SampleError detail = %+v", se)
	}
	if sc, err := ftsched.SampleScenario(app, rng, 1, nil); err != nil || sc.NFaults != 1 {
		t.Errorf("in-bounds sample failed: %v", err)
	}

	// Invalid evaluation configurations surface as a typed *MCConfigError
	// carrying the offending field, through the facade too.
	s, err := ftsched.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	tree := ftsched.StaticTree(app, s)
	var ce *ftsched.MCConfigError
	if _, err := ftsched.MonteCarlo(tree, ftsched.MCConfig{Scenarios: 100, Workers: -1}); !errors.As(err, &ce) {
		t.Fatalf("MonteCarlo(Workers: -1) = %v, want *MCConfigError", err)
	}
	if ce.Field != "Workers" || ce.Value != -1 {
		t.Errorf("MCConfigError detail = %+v", ce)
	}
}
