package ftsched_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// contextPairs are the facade entry points whose canonical form is the
// context-accepting variant: the plain name must be a thin wrapper that
// delegates to its Context sibling with context.Background(). The AST
// check below keeps the pairs in lockstep — a behaviour change that lands
// in only one of the two forms cannot compile into this shape.
var contextPairs = map[string]string{
	"FTQS":       "FTQSContext",
	"MonteCarlo": "MonteCarloContext",
	"TrimTree":   "TrimTreeContext",
	"Certify":    "CertifyContext",
	"RunChaos":   "RunChaosContext",
}

// TestContextFacadeLockstep parses ftsched.go and asserts, for every pair,
// that the plain function's body is exactly
//
//	return <Name>Context(context.Background(), <params...>)
//
// forwarding its parameters in declaration order, and that the Context
// sibling's first parameter is context.Context. Logic can then only live
// in the context-first form.
func TestContextFacadeLockstep(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ftsched.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	decls := map[string]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
			decls[fd.Name.Name] = fd
		}
	}

	for plain, ctxName := range contextPairs {
		pd, cd := decls[plain], decls[ctxName]
		if pd == nil || cd == nil {
			t.Errorf("%s/%s: pair not found in ftsched.go", plain, ctxName)
			continue
		}

		// The sibling is context-first.
		cparams := flattenParams(cd.Type.Params)
		if len(cparams) == 0 || !isContextContext(cd.Type.Params.List[0].Type) {
			t.Errorf("%s: first parameter is not context.Context", ctxName)
		}

		// The plain form is exactly one forwarding return.
		if len(pd.Body.List) != 1 {
			t.Errorf("%s: body has %d statements, want a single return of %s",
				plain, len(pd.Body.List), ctxName)
			continue
		}
		ret, ok := pd.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			t.Errorf("%s: body is not a single-expression return", plain)
			continue
		}
		call, ok := ret.Results[0].(*ast.CallExpr)
		if !ok {
			t.Errorf("%s: return value is not a call", plain)
			continue
		}
		if callee, ok := call.Fun.(*ast.Ident); !ok || callee.Name != ctxName {
			t.Errorf("%s: does not delegate to %s", plain, ctxName)
			continue
		}
		params := flattenParams(pd.Type.Params)
		if len(call.Args) != len(params)+1 {
			t.Errorf("%s: forwards %d args to %s, want %d (context + every parameter)",
				plain, len(call.Args), ctxName, len(params)+1)
			continue
		}
		if !isBackgroundCall(call.Args[0]) {
			t.Errorf("%s: first argument to %s is not context.Background()", plain, ctxName)
		}
		for i, name := range params {
			arg, ok := call.Args[i+1].(*ast.Ident)
			if !ok || arg.Name != name {
				t.Errorf("%s: argument %d to %s is not parameter %q", plain, i+1, ctxName, name)
			}
		}
	}
}

// flattenParams lists a field list's parameter names in declaration order.
func flattenParams(fl *ast.FieldList) []string {
	var names []string
	for _, field := range fl.List {
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
	}
	return names
}

func isContextContext(expr ast.Expr) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context"
}

func isBackgroundCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Background" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context"
}
