package ftsched_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestAPISurfaceCovered walks every exported symbol of the root ftsched
// package and asserts it is exercised (referenced as ftsched.<Symbol>) by
// at least one test or example in this directory. A symbol failing here is
// either dead API — remove it — or an untested entry point — reference it
// from a test or example.
func TestAPISurfaceCovered(t *testing.T) {
	fset := token.NewFileSet()
	sources, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	var exported []string
	var testText strings.Builder
	for _, path := range sources {
		if strings.HasSuffix(path, "_test.go") {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			testText.Write(b)
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if f.Name.Name != "ftsched" {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					exported = append(exported, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							exported = append(exported, s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() {
								exported = append(exported, n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(exported) < 40 {
		t.Fatalf("only %d exported symbols found — parsing broken?", len(exported))
	}

	text := testText.String()
	var missing []string
	for _, name := range exported {
		re := regexp.MustCompile(`\bftsched\.` + regexp.QuoteMeta(name) + `\b`)
		if !re.MatchString(text) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		t.Errorf("exported but never referenced in a root test or example:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
