package ftsched_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestCLIGoldenByteIdentity builds the real binaries and compares their
// single-core output byte for byte against files captured from the
// pre-platform binaries. Any drift here means the refactor changed
// user-visible single-core behaviour. Skipped with -short.
func TestCLIGoldenByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		return out
	}

	cases := []struct {
		golden string
		bin    string
		args   []string
	}{
		{
			golden: "internal/appio/testdata/fig1_ftsched_cli.txt",
			bin:    "ftsched",
			args:   []string{"-fixture", "fig1", "-algo", "ftqs", "-m", "8"},
		},
		{
			golden: "internal/appio/testdata/fig1_ftsim_cli.txt",
			bin:    "ftsim",
			args:   []string{"-fixture", "fig1", "-m", "8", "-scenarios", "2000", "-seed", "42", "-workers", "2"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.bin, func(t *testing.T) {
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command(build(tc.bin), tc.args...)
			got, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", tc.bin, tc.args, err, got)
			}
			if string(got) != string(want) {
				t.Errorf("%s %v output drifted from the pre-platform golden:\n--- got ---\n%s--- want ---\n%s",
					tc.bin, tc.args, got, want)
			}
		})
	}
}
