package ftsched_test

import (
	"bytes"
	"math/rand"
	"testing"

	"ftsched"
)

// TestPublicAPIEndToEnd walks the whole facade: build, synthesise all three
// algorithms, simulate, serialise.
func TestPublicAPIEndToEnd(t *testing.T) {
	app := ftsched.NewApplication("demo", 300, 1, 10)
	p1 := app.AddProcess(ftsched.Process{Name: "P1", Kind: ftsched.Hard,
		BCET: 30, AET: 50, WCET: 70, Deadline: 180})
	p2 := app.AddProcess(ftsched.Process{Name: "P2", Kind: ftsched.Soft,
		BCET: 30, AET: 50, WCET: 70,
		Utility: ftsched.MustStepUtility([]ftsched.Time{90, 200}, []float64{40, 20})})
	p3 := app.AddProcess(ftsched.Process{Name: "P3", Kind: ftsched.Soft,
		BCET: 40, AET: 60, WCET: 80,
		Utility: ftsched.MustStepUtility([]ftsched.Time{110, 150}, []float64{40, 30})})
	app.MustAddEdge(p1, p2)
	app.MustAddEdge(p1, p3)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}

	s, err := ftsched.FTSS(app)
	if err != nil {
		t.Fatal(err)
	}
	if u := ftsched.ExpectedUtility(app, s); u <= 0 {
		t.Errorf("utility = %g", u)
	}
	if err := ftsched.CheckSchedulable(app, s.Entries, 0, app.K()); err != nil {
		t.Error(err)
	}

	tree, err := ftsched.FTQS(app, ftsched.FTQSOptions{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() < 2 {
		t.Errorf("tree size = %d", tree.Size())
	}

	bf, err := ftsched.FTSF(app)
	if err != nil {
		t.Fatal(err)
	}

	cfg := ftsched.MCConfig{Scenarios: 1000, Faults: 1, Seed: 4}
	qs, err := ftsched.MonteCarlo(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := ftsched.MonteCarlo(ftsched.StaticTree(app, bf), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if qs.HardViolations != 0 || bs.HardViolations != 0 {
		t.Error("hard violations in simulation")
	}
	if qs.MeanUtility < bs.MeanUtility {
		t.Errorf("FTQS %g below FTSF %g", qs.MeanUtility, bs.MeanUtility)
	}

	// Single-scenario run.
	rng := rand.New(rand.NewSource(1))
	sc, err := ftsched.SampleScenario(app, rng, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ftsched.Run(tree, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.HardViolations) != 0 {
		t.Error("violations in single run")
	}

	// Serialisation round trip.
	var buf bytes.Buffer
	if err := ftsched.EncodeApplication(&buf, app); err != nil {
		t.Fatal(err)
	}
	back, err := ftsched.DecodeApplication(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 {
		t.Error("round trip lost processes")
	}
	var dot bytes.Buffer
	if err := ftsched.WriteDOT(&dot, app); err != nil {
		t.Fatal(err)
	}
	if err := ftsched.WriteTreeDOT(&dot, tree); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFixturesAndGenerator(t *testing.T) {
	if ftsched.PaperFig1().N() != 3 || ftsched.PaperFig8().N() != 5 {
		t.Error("paper fixtures broken")
	}
	cc := ftsched.CruiseController()
	if cc.N() != 32 {
		t.Error("cruise controller broken")
	}
	rng := rand.New(rand.NewSource(2))
	app, err := ftsched.Generate(rng, ftsched.DefaultGenConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	if app.N() != 15 {
		t.Error("generator broken")
	}
	// Multi-rate merge through the facade.
	m, err := ftsched.Merge("m", 1, 10, ftsched.PaperFig1())
	if err != nil {
		t.Fatal(err)
	}
	if m.Period() != 300 {
		t.Error("merge broken")
	}
	if _, err := ftsched.LinearDropUtility(10, 5, 50); err != nil {
		t.Error(err)
	}
}
